"""Compaction driver: executes the core policies on real sorted runs.

This module is where the shared abstractions pay off: the *same*
:class:`~repro.core.policies.base.MergePolicy` and
:class:`~repro.core.schedulers.base.MergeScheduler` objects that drive the
simulator decide which runs to merge and which merge makes progress next.

Merges execute in *chunks*: :meth:`CompactionManager.step` asks the
scheduler for the current bandwidth allocation and advances the in-flight
merge with the largest share by one chunk of input bytes. A
single-threaded scheduler therefore runs one merge to completion; the
fair scheduler round-robins chunks across merges; the greedy scheduler
always advances the merge with the fewest remaining input bytes —
cooperative multitasking that realizes each paper scheduler's discipline
deterministically, with the shared rate limiter throttling actual file
writes underneath.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator

from ..core import model
from ..core.components import Component, MergeDescriptor, TreeSnapshot, UidAllocator
from ..core.policies import (
    LevelingPolicy,
    MergePolicy,
    SizeTieredPolicy,
    TieringPolicy,
)
from ..core.schedulers import (
    FairScheduler,
    GlobalComponentConstraint,
    GreedyScheduler,
    MergeScheduler,
    SingleThreadedScheduler,
)
from ..errors import ConfigurationError, CorruptionError
from ..obs import events as obs_events
from .blockcache import BlockCache
from .iterators import reconciling_iterator
from .manifest import Manifest
from .options import StoreOptions, TOMBSTONE
from .quarantine import QuarantineEntry, QuarantineSet
from .ratelimiter import RateLimiter, SyncPolicy
from .sstable import SSTableReader, SSTableWriter

#: Upper key bound recorded when a run is quarantined before its meta
#: block could be read — wide enough that any plausible key is covered.
_UNBOUNDED_MAX_KEY = b"\xff" * 256


def build_policy(options: StoreOptions) -> MergePolicy:
    """Instantiate the configured core merge policy for the engine."""
    if options.policy == "leveling":
        return LevelingPolicy(
            options.size_ratio, options.levels, options.memtable_bytes
        )
    if options.policy == "tiering":
        return TieringPolicy(int(options.size_ratio), options.levels)
    return SizeTieredPolicy(
        size_ratio=max(options.size_ratio, 1.1),
        min_merge=2,
        max_merge=10,
    )


def build_scheduler(options: StoreOptions) -> MergeScheduler:
    """Instantiate the configured core merge scheduler."""
    if options.scheduler == "single":
        return SingleThreadedScheduler()
    if options.scheduler == "fair":
        return FairScheduler()
    return GreedyScheduler()


class _CountingSource:
    """Wraps a run iterator, counting consumed input bytes."""

    def __init__(self, items: Iterator[tuple[bytes, bytes | None]]) -> None:
        self._items = items
        self.consumed = 0

    def __iter__(self):
        return self

    def __next__(self):
        key, value = next(self._items)
        self.consumed += len(key) + (0 if value is TOMBSTONE else len(value))
        return key, value


class MergeJob:
    """An in-flight merge: incremental reconciliation into a new run.

    The job *owns* its input readers — the compaction manager opens it
    dedicated ones rather than sharing the store's query readers,
    because :meth:`advance` may run on a maintenance worker outside the
    store lock while foreground reads use the shared readers' file
    handles. ``claimed`` is the executor's co-advance guard: a worker
    (or the inline pump) may only call :meth:`advance` after claiming
    the job under the store lock, so two threads can never interleave
    chunks of one merge.
    """

    def __init__(
        self,
        descriptor: MergeDescriptor,
        readers: list[SSTableReader],
        output_path: str,
        options: StoreOptions,
        rate_limiter: RateLimiter,
        drop_tombstones: bool,
    ) -> None:
        self.descriptor = descriptor
        self._readers = readers
        self.claimed = False
        # reconciling_iterator wants newest-first; inputs are oldest-first
        sources = [
            _CountingSource(reader.items()) for reader in reversed(readers)
        ]
        self._sources = sources
        self._stream = reconciling_iterator(
            sources, keep_tombstones=not drop_tombstones
        )
        self._writer = SSTableWriter(
            output_path,
            block_bytes=options.block_bytes,
            bloom_bits_per_key=options.bloom_bits_per_key,
            expected_keys=sum(r.entry_count for r in readers),
            rate_limiter=rate_limiter,
            sync_policy=SyncPolicy(options.bytes_per_sync),
            fault_plan=options.fault_plan,
            block_codec=options.block_codec,
            filter_kind=options.filter_kind,
        )
        self._output_path = output_path
        # Progress is tracked against *logical* input bytes because the
        # per-source consumed counters see decompressed entries; for
        # uncompressed (and all version-1) runs this equals data_bytes.
        self._total_input = sum(r.logical_bytes for r in readers)
        self.finished = False
        self.stats = None

    def _consumed(self) -> int:
        return sum(source.consumed for source in self._sources)

    def advance(self, chunk_bytes: int) -> bool:
        """Process roughly ``chunk_bytes`` of input; True when complete."""
        if self.finished:
            return True
        target = self._consumed() + chunk_bytes
        for key, value in self._stream:
            self._writer.add(key, value)
            if self._consumed() >= target:
                break
        else:
            self.stats = self._writer.finish()
            self.finished = True
        self.descriptor.remaining_input_bytes = max(
            0.0, self._total_input - self._consumed()
        )
        return self.finished

    def abandon(self) -> None:
        """Abort the merge and delete the partial output."""
        self._writer.abandon()
        self.close_readers()
        self.descriptor.release_inputs()

    def close_readers(self) -> None:
        """Close the job's dedicated input readers."""
        for reader in self._readers:
            reader.close()

    @property
    def output_path(self) -> str:
        """Path of the run being produced."""
        return self._output_path

    @property
    def total_input_bytes(self) -> int:
        """Total merge input this job will consume."""
        return self._total_input


class CompactionManager:
    """Owns the live run set and drives flushes and merges."""

    #: Default input bytes processed per scheduler consultation. Small
    #: enough that the greedy scheduler can redirect quickly, large
    #: enough to amortize Python-level overhead. Overridden per store by
    #: ``options.merge_chunk_bytes``.
    CHUNK_BYTES = 1 << 20

    def __init__(
        self,
        directory: str,
        options: StoreOptions,
        manifest: Manifest,
        clock: Callable[[], float] | None = None,
        obs=None,
    ) -> None:
        self._directory = directory
        self._options = options
        self.chunk_bytes = options.merge_chunk_bytes or self.CHUNK_BYTES
        self._manifest = manifest
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_flushes = registry.counter(
                "engine_flushes_total",
                help="Sealed memtables flushed to level-0 runs.",
            )
            self._m_flush_bytes = registry.counter(
                "engine_flush_bytes_total",
                help="Bytes written by memtable flushes.",
            )
        self._policy = build_policy(options)
        self._scheduler = build_scheduler(options)
        limit = options.constraint_limit or model.default_component_limit(
            self._policy.expected_components()
        )
        self._constraint = GlobalComponentConstraint(limit)
        self._uids = UidAllocator()
        self._rate_limiter = RateLimiter(options.rate_limit_bytes_per_s)
        self._block_cache = BlockCache(options.block_cache_bytes)
        self._readers: dict[int, SSTableReader] = {}
        self._components: dict[int, Component] = {}
        self._jobs: dict[int, MergeJob] = {}
        self._merge_count = 0
        self._quarantine = QuarantineSet(directory)
        self._recover_components()

    # -- bootstrap/recovery --------------------------------------------

    def _recover_components(self) -> None:
        records = self._manifest.live_runs()
        # A merge or repair that retired a run also retired its
        # quarantine; drop registry entries the manifest no longer backs.
        self._quarantine.retain({record.run_id for record in records})
        live_files = set()
        for record in records:
            path = os.path.join(self._directory, record.filename)
            live_files.add(record.filename)
            try:
                reader = SSTableReader(path, block_cache=self._block_cache)
            except (CorruptionError, OSError) as error:
                # The run cannot even be opened (bad footer, index, or
                # meta block), but its data may still be recoverable
                # from a replica: keep it in the tree as a quarantined,
                # readerless component instead of refusing to start.
                # Without a meta block its key bounds are unknown, so
                # the quarantine fences the whole keyspace.
                size = os.path.getsize(path) if os.path.exists(path) else 0
                self._components[record.run_id] = Component(
                    uid=record.run_id,
                    level=record.level,
                    size_bytes=float(size),
                    entry_count=0.0,
                    handle=record,
                )
                if record.run_id not in self._quarantine:
                    self._quarantine.add(
                        QuarantineEntry(
                            run_id=record.run_id,
                            filename=record.filename,
                            level=record.level,
                            min_key=b"",
                            max_key=_UNBOUNDED_MAX_KEY,
                            reason=str(error),
                            source="read",
                        )
                    )
                continue
            self._readers[record.run_id] = reader
            self._components[record.run_id] = Component(
                uid=record.run_id,
                level=record.level,
                size_bytes=float(reader.data_bytes),
                entry_count=float(reader.entry_count),
                handle=record,
            )
        # Orphaned run files are crash leftovers from unfinished merges.
        for name in os.listdir(self._directory):
            if name.endswith(".run") and name not in live_files:
                os.remove(os.path.join(self._directory, name))

    # -- views -----------------------------------------------------------

    def snapshot(self) -> TreeSnapshot:
        """Core-typed view of the live runs, oldest-first per level."""
        ordered = sorted(
            self._components.values(), key=lambda c: (c.level, c.handle.sequence)
        )
        return TreeSnapshot(ordered)

    def readers_newest_first(self) -> list[SSTableReader]:
        """Readable run readers ordered newest data first (query order).

        Quarantined runs are excluded — callers that must *fail* rather
        than silently skip them use :meth:`read_plan`, which keeps the
        quarantine markers in probe position.
        """
        records = sorted(
            self._components.values(),
            key=lambda c: c.handle.sequence,
            reverse=True,
        )
        return [
            self._readers[c.uid]
            for c in records
            if c.uid not in self._quarantine
        ]

    def read_plan(
        self,
    ) -> list[tuple[int, SSTableReader | QuarantineEntry]]:
        """Probe plan, newest data first: ``(run_id, element)`` where the
        element is a live reader — or the :class:`QuarantineEntry`
        fencing that run off, held *in probe position* so a point lookup
        knows exactly when its answer would have depended on the corrupt
        run (newer sources can still answer soundly)."""
        ordered = sorted(
            self._components.values(),
            key=lambda c: c.handle.sequence,
            reverse=True,
        )
        plan: list[tuple[int, SSTableReader | QuarantineEntry]] = []
        for component in ordered:
            entry = self._quarantine.get(component.uid)
            if entry is not None:
                plan.append((component.uid, entry))
            else:
                plan.append((component.uid, self._readers[component.uid]))
        return plan

    @property
    def quarantine(self) -> QuarantineSet:
        """The persisted quarantine registry (query under the store lock)."""
        return self._quarantine

    def scrub_targets(self) -> list[tuple[int, str]]:
        """``(run_id, path)`` of every readable live run, stable order —
        the work list one scrub pass walks."""
        return sorted(
            (uid, reader.path)
            for uid, reader in self._readers.items()
            if uid not in self._quarantine
        )

    def _in_flight(self, run_id: int) -> bool:
        return any(
            any(c.uid == run_id for c in job.descriptor.inputs)
            for job in self._jobs.values()
        )

    def quarantine_run(
        self, run_id: int, reason: str, source: str
    ) -> QuarantineEntry | None:
        """Fence a live run off from reads and merges (under the lock).

        Returns the new entry, or None when the run is not live or is
        already quarantined (nothing changed). Pending unclaimed merges
        that would consume the run are abandoned so the policy cannot
        merge *around* it — a merge output stamped with a newer sequence
        would shadow the quarantined run's repaired data.
        """
        component = self._components.get(run_id)
        if component is None or run_id in self._quarantine:
            return None
        reader = self._readers.get(run_id)
        if reader is not None:
            min_key, max_key = reader.min_key, reader.max_key
        else:
            min_key, max_key = b"", _UNBOUNDED_MAX_KEY
        entry = QuarantineEntry(
            run_id=run_id,
            filename=component.handle.filename,
            level=component.level,
            min_key=min_key,
            max_key=max_key,
            reason=reason,
            source=source,
        )
        self._quarantine.add(entry)
        for job in list(self._jobs.values()):
            if not job.claimed and any(
                c.uid == run_id for c in job.descriptor.inputs
            ):
                self._jobs.pop(job.descriptor.uid, None)
                job.abandon()
        return entry

    @property
    def component_count(self) -> int:
        """Number of live disk components."""
        return len(self._components)

    @property
    def merges_completed(self) -> int:
        """Merges finished over this manager's lifetime."""
        return self._merge_count

    @property
    def rate_limiter(self) -> RateLimiter:
        """The shared flush/merge write throttle."""
        return self._rate_limiter

    @property
    def block_cache(self) -> BlockCache:
        """The shared read cache over all live runs."""
        return self._block_cache

    def levels(self) -> dict[int, int]:
        """Component count per level."""
        result: dict[int, int] = {}
        for component in self._components.values():
            result[component.level] = result.get(component.level, 0) + 1
        return result

    def is_write_stalled(self) -> bool:
        """True when the component constraint forbids new flushes."""
        return self._constraint.is_violated(self.snapshot())

    @property
    def constraint_limit(self) -> int:
        """The global component-count budget writes are gated on."""
        return self._constraint.limit

    def write_headroom(self) -> float:
        """Remaining component budget as a fraction (0 = stalled).

        Graceful write-slowdown controls (the serving tier's ``gradual``
        admission mode) key their delays off this signal, bLSM-style.
        """
        return self._constraint.headroom(self.snapshot())

    # -- flush -----------------------------------------------------------

    def begin_flush(self, entry_hint: int) -> tuple[int, SSTableWriter]:
        """Allocate a run id and open its writer (call under the store lock).

        First half of the claim/publish protocol: the returned writer's
        I/O runs off-lock on a maintenance worker, which feeds it the
        sealed memtable and hands the finished stats to
        :meth:`publish_flush` back under the lock. The run id is not
        durable until publish, so an abandoned writer leaves nothing but
        an orphan file that recovery sweeps.
        """
        run_id = self._manifest.allocate_run_id()
        filename = f"{run_id:08d}.run"
        if self._obs is not None:
            self._obs.tracer.emit(
                obs_events.FLUSH_START, run_id=run_id, entries=entry_hint
            )
        writer = SSTableWriter(
            os.path.join(self._directory, filename),
            block_bytes=self._options.block_bytes,
            bloom_bits_per_key=self._options.bloom_bits_per_key,
            expected_keys=entry_hint,
            rate_limiter=self._rate_limiter,
            sync_policy=SyncPolicy(self._options.bytes_per_sync),
            fault_plan=self._options.fault_plan,
            block_codec=self._options.block_codec,
            filter_kind=self._options.filter_kind,
        )
        return run_id, writer

    def _note_run_written(self, stats) -> None:
        """Block-format metrics for any newly published run: how many
        data-block bytes it stores physically vs. logically (the
        store-wide space-amp series), and which point filter it built."""
        if self._obs is None:
            return
        registry = self._obs.registry
        registry.counter(
            "engine_block_logical_bytes_total",
            labels={"codec": stats.codec},
            help="Pre-compression data-block bytes in published runs, "
            "by codec.",
        ).inc(stats.logical_bytes)
        registry.counter(
            "engine_block_compressed_bytes_total",
            labels={"codec": stats.codec},
            help="Physical (post-codec) data-block bytes in published "
            "runs, by codec.",
        ).inc(stats.data_bytes)
        registry.counter(
            "engine_filters_built_total",
            labels={"kind": stats.filter_kind},
            help="Point filters built for published runs, by kind.",
        ).inc()

    def publish_flush(self, run_id: int, stats) -> None:
        """Install a finished flush's run (call under the store lock)."""
        self._note_run_written(stats)
        if self._obs is not None:
            self._m_flushes.inc()
            self._m_flush_bytes.inc(stats.data_bytes)
            self._obs.tracer.emit(
                obs_events.FLUSH_END,
                run_id=run_id,
                bytes=stats.data_bytes,
                entries=stats.entry_count,
            )
        record = self._manifest.add_run(
            run_id, 0, os.path.basename(stats.path)
        )
        reader = SSTableReader(stats.path, block_cache=self._block_cache)
        self._readers[run_id] = reader
        self._components[run_id] = Component(
            uid=run_id,
            level=0,
            size_bytes=float(reader.data_bytes),
            entry_count=float(reader.entry_count),
            handle=record,
        )
        self._schedule_merges()

    def register_flush(
        self, items: Iterator[tuple[bytes, bytes | None]], entry_hint: int
    ) -> None:
        """Write a sealed memtable out as a new level-0 run (inline)."""
        run_id, writer = self.begin_flush(entry_hint)
        for key, value in items:
            writer.add(key, value)
        self.publish_flush(run_id, writer.finish())

    # -- merging ---------------------------------------------------------

    def _schedule_merges(self) -> None:
        active = [job.descriptor for job in self._jobs.values()]
        for descriptor in self._policy.select_merges(
            self.snapshot(), self._uids, active
        ):
            # Quarantined inputs are filtered *here*, not hidden from
            # the snapshot: the policy must keep seeing the run (it
            # still occupies its level and counts against the component
            # constraint), but merging it — or merging its neighbours
            # over it into a newer-stamped output — would either read
            # corrupt blocks or invert shadowing once the run is
            # repaired at its original sequence.
            if any(c.uid in self._quarantine for c in descriptor.inputs):
                descriptor.release_inputs()
                continue
            self._start_job(descriptor)

    def _start_job(self, descriptor: MergeDescriptor) -> None:
        # Dedicated input readers: SSTableReader seeks one shared file
        # handle, so a job advancing off-lock on a maintenance worker
        # cannot iterate the store's query readers while foreground
        # reads use them. No block cache — a merge's single sequential
        # pass would only churn it.
        readers = [
            SSTableReader(self._readers[c.uid].path)
            for c in descriptor.inputs
        ]
        oldest_live = min(
            c.handle.sequence for c in self._components.values()
        )
        drops = any(
            c.handle.sequence == oldest_live for c in descriptor.inputs
        )
        output_run_id = self._manifest.allocate_run_id()
        output_path = os.path.join(
            self._directory, f"{output_run_id:08d}.run"
        )
        job = MergeJob(
            descriptor,
            readers,
            output_path,
            self._options,
            self._rate_limiter,
            drop_tombstones=drops,
        )
        job.output_run_id = output_run_id
        self._jobs[descriptor.uid] = job
        if self._obs is not None:
            self._obs.tracer.emit(
                obs_events.MERGE_START,
                merge_uid=descriptor.uid,
                level=descriptor.target_level,
                inputs=len(descriptor.inputs),
                input_bytes=job.total_input_bytes,
            )

    def _finish_job(self, job: MergeJob) -> None:
        descriptor = job.descriptor
        removed_ids = [c.uid for c in descriptor.inputs]
        stats = job.stats
        job.close_readers()
        added = []
        if stats.entry_count > 0:
            added.append(
                (job.output_run_id, descriptor.target_level,
                 os.path.basename(stats.path))
            )
        data_sequence = max(
            c.handle.sequence for c in descriptor.inputs
        )
        records = self._manifest.replace_runs(
            removed_ids, added, sequence=data_sequence
        )
        for run_id in removed_ids:
            reader = self._readers.pop(run_id)
            reader.close()
            os.remove(reader.path)
            del self._components[run_id]
            # A run quarantined while this merge was already in flight:
            # the merge read every one of its blocks with checksums
            # intact, so the output supersedes it soundly.
            self._quarantine.remove(run_id)
        if records:
            record = records[0]
            reader = SSTableReader(stats.path, block_cache=self._block_cache)
            self._readers[record.run_id] = reader
            self._components[record.run_id] = Component(
                uid=record.run_id,
                level=record.level,
                size_bytes=float(reader.data_bytes),
                entry_count=float(reader.entry_count),
                handle=record,
            )
        elif os.path.exists(stats.path):
            os.remove(stats.path)  # merge produced nothing live
        descriptor.release_inputs()
        del self._jobs[descriptor.uid]
        self._merge_count += 1
        if stats.entry_count > 0:
            self._note_run_written(stats)
        if self._obs is not None:
            level = str(descriptor.target_level)
            self._obs.registry.counter(
                "engine_merges_total",
                labels={"level": level},
                help="Merges completed, by target level.",
            ).inc()
            self._obs.registry.counter(
                "engine_merge_bytes_total",
                labels={"level": level},
                help="Merge input bytes consumed, by target level.",
            ).inc(job.total_input_bytes)
            self._obs.tracer.emit(
                obs_events.MERGE_END,
                merge_uid=descriptor.uid,
                level=descriptor.target_level,
                input_bytes=job.total_input_bytes,
                output_bytes=stats.data_bytes,
            )
        self._schedule_merges()

    def has_work(self) -> bool:
        """True when merges are pending."""
        return bool(self._jobs)

    def has_unclaimed_work(self) -> bool:
        """True when a merge is pending that no worker has claimed."""
        return any(not job.claimed for job in self._jobs.values())

    @property
    def merge_jobs_in_flight(self) -> int:
        """In-flight merge jobs (claimed or waiting for a worker)."""
        return len(self._jobs)

    def kick(self) -> bool:
        """Schedule any newly-eligible merges; True if work now exists."""
        self._schedule_merges()
        return self.has_work()

    def claim_merge(self) -> MergeJob | None:
        """Claim the scheduler-preferred unclaimed merge (under lock).

        The core scheduler arbitrates which merge each caller advances:
        the allocation over *unclaimed* descriptors is computed and the
        largest share wins, so the fair scheduler spreads concurrent
        workers across merges while the greedy scheduler funnels them
        toward the fewest-remaining-bytes merge first. Returns None when
        everything is already claimed or no merge is eligible.
        """
        if not self._jobs:
            self._schedule_merges()
        unclaimed = [
            job.descriptor
            for job in self._jobs.values()
            if not job.claimed
        ]
        if not unclaimed:
            return None
        allocation = self._scheduler.allocate(
            unclaimed, budget=1.0, tree=self.snapshot()
        )
        if not allocation:
            return None
        chosen_uid = max(allocation, key=allocation.get)
        job = self._jobs[chosen_uid]
        job.claimed = True
        return job

    def release_merge(self, job: MergeJob, finished: bool) -> None:
        """Publish a finished chunk's outcome (under lock).

        Unclaims the job; a finished merge is installed in the manifest
        and its inputs retired.
        """
        job.claimed = False
        if finished:
            self._finish_job(job)

    def fail_merge(self, job: MergeJob) -> None:
        """Abandon a claimed merge whose advance raised (under lock).

        The partial output is deleted and the descriptor's inputs are
        released, so the policy may reschedule the same merge later.
        """
        job.claimed = False
        self._jobs.pop(job.descriptor.uid, None)
        job.abandon()

    # -- quarantine repair ---------------------------------------------

    def begin_repair(self, run_id: int) -> tuple[int, SSTableWriter] | None:
        """Open the replacement writer for a quarantined run (under lock).

        Returns ``(new_run_id, writer)``, or None when the run is not
        live, not quarantined, or still feeding an in-flight merge (the
        merge will either finish — lifting the quarantine itself — or
        fail and unblock a later repair attempt).
        """
        component = self._components.get(run_id)
        if (
            component is None
            or run_id not in self._quarantine
            or self._in_flight(run_id)
        ):
            return None
        new_run_id = self._manifest.allocate_run_id()
        writer = SSTableWriter(
            os.path.join(self._directory, f"{new_run_id:08d}.run"),
            block_bytes=self._options.block_bytes,
            bloom_bits_per_key=self._options.bloom_bits_per_key,
            expected_keys=int(component.entry_count) or 1024,
            rate_limiter=self._rate_limiter,
            sync_policy=SyncPolicy(self._options.bytes_per_sync),
            fault_plan=self._options.fault_plan,
            block_codec=self._options.block_codec,
            filter_kind=self._options.filter_kind,
        )
        return new_run_id, writer

    def publish_repair(self, run_id: int, new_run_id: int, stats) -> bool:
        """Swap a rebuilt run in for a quarantined one (under the lock).

        The replacement keeps the old run's level and — critically — its
        *sequence stamp*: the rebuilt data re-enters reconciliation at
        exactly the shadowing position the corrupt run held, so values
        flushed or merged while the repair ran keep winning. An empty
        rebuild (the replica held nothing in the run's bounds) simply
        retires the run. Lifts the quarantine on success.
        """
        component = self._components.get(run_id)
        if component is None or run_id not in self._quarantine:
            return False
        added = []
        if stats.entry_count > 0:
            self._note_run_written(stats)
            added.append(
                (new_run_id, component.level, os.path.basename(stats.path))
            )
        records = self._manifest.replace_runs(
            [run_id], added, sequence=component.handle.sequence
        )
        old_reader = self._readers.pop(run_id, None)
        if old_reader is not None:
            old_reader.close()
        old_path = os.path.join(self._directory, component.handle.filename)
        if os.path.exists(old_path):
            os.remove(old_path)
        del self._components[run_id]
        if records:
            record = records[0]
            reader = SSTableReader(stats.path, block_cache=self._block_cache)
            self._readers[record.run_id] = reader
            self._components[record.run_id] = Component(
                uid=record.run_id,
                level=record.level,
                size_bytes=float(reader.data_bytes),
                entry_count=float(reader.entry_count),
                handle=record,
            )
        elif os.path.exists(stats.path):
            os.remove(stats.path)
        self._quarantine.remove(run_id)
        self._schedule_merges()
        return True

    def drop_run(self, run_id: int) -> bool:
        """Retire a quarantined run with no replacement (under the lock).

        Only sound when an authoritative snapshot supersedes the whole
        store — a replica reset installs the leader's full state above
        every run, so nothing the dropped run contained (or shadowed)
        can resurface. Refuses while an in-flight merge reads the run.
        """
        component = self._components.get(run_id)
        if component is None or self._in_flight(run_id):
            return False
        self._manifest.replace_runs([run_id], [])
        reader = self._readers.pop(run_id, None)
        if reader is not None:
            reader.close()
        path = os.path.join(self._directory, component.handle.filename)
        if os.path.exists(path):
            os.remove(path)
        del self._components[run_id]
        self._quarantine.remove(run_id)
        return True

    def step(self) -> bool:
        """Advance one scheduler-chosen merge by one chunk.

        Returns True if any progress was made (False = idle). This is
        the inline pump: claim, advance, release — the same protocol the
        maintenance workers follow, minus the lock juggling.
        """
        job = self.claim_merge()
        if job is None:
            return False
        finished = job.advance(self.chunk_bytes)
        self.release_merge(job, finished)
        return True

    def drain(self, max_steps: int = 1_000_000) -> int:
        """Run merges until none remain; returns steps taken."""
        steps = 0
        self._schedule_merges()
        while self.has_work():
            if not self.step():
                break
            steps += 1
            if steps >= max_steps:
                raise ConfigurationError(
                    "compaction did not converge within the step budget"
                )
        return steps

    def close(self) -> None:
        """Abandon in-flight merges and close every reader."""
        for job in list(self._jobs.values()):
            job.abandon()
        self._jobs.clear()
        for reader in self._readers.values():
            reader.close()
