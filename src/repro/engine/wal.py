"""Write-ahead log: durability for the memory components.

Records are length-prefixed, CRC-protected frames, each carrying one
commit batch of operations (put or delete). Replay stops cleanly at the
first torn or corrupt frame — a crash mid-append must not poison the
recovered prefix. The paper logs to a separate spindle; here the WAL path
is simply a separate file, and fsync behaviour is the caller's choice
(``sync=True`` per batch for durability, or buffered for speed).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError
from .options import TOMBSTONE

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32
_OP = struct.Struct("<BII")  # opcode, key length, value length
_OP_PUT = 1
_OP_DELETE = 2


@dataclass(frozen=True)
class WalScan:
    """Why (and where) a WAL replay stops.

    ``replay`` silently yields the intact prefix; this companion makes
    the stop *observable*: ``state`` is ``"clean"`` (every byte parsed),
    ``"torn"`` (a partial frame at the tail — the expected crash shape),
    or ``"corrupt"`` (a CRC or decode failure with more bytes after it —
    an interior frame was damaged and ``remaining_bytes`` of log after
    ``valid_bytes`` are unrecoverable). Integrity audits report the
    corrupt case as a problem; a torn tail is normal crash residue.
    """

    state: str
    frames: int
    valid_bytes: int
    total_bytes: int

    @property
    def remaining_bytes(self) -> int:
        """Bytes after the last intact frame that replay cannot reach."""
        return self.total_bytes - self.valid_bytes


def scan_wal(path: str) -> WalScan:
    """Classify a WAL file's replayable prefix (see :class:`WalScan`)."""
    if not os.path.exists(path):
        return WalScan(state="clean", frames=0, valid_bytes=0, total_bytes=0)
    total = os.path.getsize(path)
    frames = 0
    position = 0
    state = "clean"
    with open(path, "rb") as log:
        while True:
            header = log.read(_FRAME_HEADER.size)
            if not header:
                break  # clean end
            if len(header) < _FRAME_HEADER.size:
                state = "torn"
                break
            length, crc = _FRAME_HEADER.unpack(header)
            payload = log.read(length)
            if len(payload) < length:
                state = "torn"
                break
            if (
                zlib.crc32(payload) & 0xFFFFFFFF != crc
                or _decode_ops(payload) is None
            ):
                # A bad *last* frame is indistinguishable from a torn
                # append racing a crash; only damage followed by more
                # log proves an interior frame rotted.
                frame_end = position + _FRAME_HEADER.size + length
                state = "corrupt" if frame_end < total else "torn"
                break
            frames += 1
            position += _FRAME_HEADER.size + length
    return WalScan(
        state=state, frames=frames, valid_bytes=position, total_bytes=total
    )


def fsync_file(file) -> None:
    """Flush and fsync ``file``, honouring fault-injection wrappers.

    A :class:`~repro.faults.FaultyFile` exposes its own ``fsync`` so the
    fault plan can observe (and fail) the sync; plain files fall back to
    ``os.fsync`` on the descriptor.
    """
    sync = getattr(file, "fsync", None)
    if callable(sync):
        sync()
        return
    file.flush()
    os.fsync(file.fileno())


def fsync_dir(directory: str) -> None:
    """fsync a directory so file creations/renames inside it are durable.

    POSIX only makes a new directory entry durable once the *directory*
    is synced; without this, a freshly created (or truncated-and-
    recreated) WAL can vanish wholesale on power loss. Platforms that
    cannot open directories simply skip the sync.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only redo log of commit batches."""

    def __init__(
        self, path: str, sync: bool = False, fault_plan=None
    ) -> None:
        self._path = path
        self._sync = sync
        self._fault_plan = fault_plan
        self._generation = 0
        existed = os.path.exists(path)
        self._file = self._wrap(open(path, "ab"))
        self._bytes = os.path.getsize(path)
        if not existed:
            fsync_dir(os.path.dirname(path))

    def _wrap(self, file):
        if self._fault_plan is None:
            return file
        return self._fault_plan.wrap(file, "wal")

    @property
    def path(self) -> str:
        """Backing file path."""
        return self._path

    @property
    def size_bytes(self) -> int:
        """Current log size."""
        return self._bytes

    @property
    def generation(self) -> int:
        """Truncation epoch: byte offsets are only comparable within one
        generation, and every :meth:`truncate` starts a new one."""
        return self._generation

    def append(
        self, batch: list[tuple[bytes, bytes | None]]
    ) -> tuple[int, int]:
        """Durably record one commit batch of (key, value-or-None) ops.

        Returns the ``(offset, length)`` of the appended frame so callers
        (replication shipping, incremental tooling) can address it later
        via :meth:`replay_from` or :meth:`stream_frames`.
        """
        if not batch:
            raise ConfigurationError("empty commit batch")
        payload = bytearray()
        for key, value in batch:
            if value is TOMBSTONE:
                payload += _OP.pack(_OP_DELETE, len(key), 0) + key
            else:
                payload += _OP.pack(_OP_PUT, len(key), len(value)) + key + value
        frame = _FRAME_HEADER.pack(
            len(payload), zlib.crc32(bytes(payload)) & 0xFFFFFFFF
        )
        self._file.write(frame + payload)
        self._file.flush()
        if self._sync:
            fsync_file(self._file)
        offset = self._bytes
        length = len(frame) + len(payload)
        self._bytes = offset + length
        return offset, length

    def truncate(self) -> None:
        """Discard the log (all buffered state reached durable runs)."""
        self._file.close()
        self._file = open(self._path, "wb")
        self._file.close()
        self._file = self._wrap(open(self._path, "ab"))
        self._bytes = 0
        self._generation += 1
        fsync_dir(os.path.dirname(self._path))

    def close(self) -> None:
        """Close the log file."""
        if not self._file.closed:
            self._file.close()

    @staticmethod
    def stream_frames(
        path: str, offset: int = 0
    ) -> Iterator[tuple[int, int, list[tuple[bytes, bytes | None]]]]:
        """Yield ``(frame_offset, frame_end, ops)`` for every intact frame
        starting at byte ``offset``, stopping at the first torn or corrupt
        frame (crash-consistent prefix streaming).

        ``offset`` must land on a frame boundary — replication cursors
        only ever hold values returned by :meth:`append` or yielded here,
        so a misaligned offset simply reads as a corrupt frame and stops.
        """
        if offset < 0:
            raise ConfigurationError("wal offset must be non-negative")
        if not os.path.exists(path):
            return
        with open(path, "rb") as log:
            if offset:
                log.seek(offset)
            position = offset
            while True:
                header = log.read(_FRAME_HEADER.size)
                if len(header) < _FRAME_HEADER.size:
                    return  # clean end or torn header
                length, crc = _FRAME_HEADER.unpack(header)
                payload = log.read(length)
                if len(payload) < length:
                    return  # torn frame
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    return  # corrupt frame: stop streaming here
                ops = _decode_ops(payload)
                if ops is None:
                    return
                end = position + _FRAME_HEADER.size + length
                yield position, end, ops
                position = end

    @staticmethod
    def replay_from(
        path: str, offset: int
    ) -> Iterator[tuple[bytes, bytes | None]]:
        """Yield every operation from intact frames at byte ``offset``
        onwards, with the same torn-tail tolerance as :meth:`replay`."""
        for _start, _end, ops in WriteAheadLog.stream_frames(path, offset):
            yield from ops

    @staticmethod
    def replay(path: str) -> Iterator[tuple[bytes, bytes | None]]:
        """Yield every operation from intact frames, stopping at the
        first torn or corrupt frame (crash-consistent prefix replay)."""
        yield from WriteAheadLog.replay_from(path, 0)


def _decode_ops(payload: bytes) -> list[tuple[bytes, bytes | None]] | None:
    """Decode one frame payload into ops; ``None`` if malformed."""
    pos = 0
    length = len(payload)
    ops: list[tuple[bytes, bytes | None]] = []
    while pos < length:
        if pos + _OP.size > length:
            return None
        opcode, key_len, val_len = _OP.unpack_from(payload, pos)
        pos += _OP.size
        key = payload[pos : pos + key_len]
        pos += key_len
        if opcode == _OP_PUT:
            value = payload[pos : pos + val_len]
            pos += val_len
            ops.append((key, value))
        elif opcode == _OP_DELETE:
            ops.append((key, TOMBSTONE))
        else:
            return None
    return ops
