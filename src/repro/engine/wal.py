"""Write-ahead log: durability for the memory components.

Records are length-prefixed, CRC-protected frames, each carrying one
commit batch of operations (put or delete). Replay stops cleanly at the
first torn or corrupt frame — a crash mid-append must not poison the
recovered prefix. The paper logs to a separate spindle; here the WAL path
is simply a separate file, and fsync behaviour is the caller's choice
(``sync=True`` per batch for durability, or buffered for speed).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError, WalFailedError
from .options import TOMBSTONE

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32
_OP = struct.Struct("<BII")  # opcode, key length, value length
_OP_PUT = 1
_OP_DELETE = 2


@dataclass(frozen=True)
class WalScan:
    """Why (and where) a WAL replay stops.

    ``replay`` silently yields the intact prefix; this companion makes
    the stop *observable*: ``state`` is ``"clean"`` (every byte parsed),
    ``"torn"`` (a partial frame at the tail — the expected crash shape),
    or ``"corrupt"`` (a CRC or decode failure with more bytes after it —
    an interior frame was damaged and ``remaining_bytes`` of log after
    ``valid_bytes`` are unrecoverable). Integrity audits report the
    corrupt case as a problem; a torn tail is normal crash residue.
    """

    state: str
    frames: int
    valid_bytes: int
    total_bytes: int

    @property
    def remaining_bytes(self) -> int:
        """Bytes after the last intact frame that replay cannot reach."""
        return self.total_bytes - self.valid_bytes


def _walk_frames(log, position: int, total: int):
    """Walk frames from ``position``: the one shared parser.

    Yields ``("frame", start, end, ops)`` for every intact frame, then
    exactly one terminator ``(state, pos, pos, None)`` where ``state``
    is ``"clean"`` (every byte parsed), ``"torn"`` (partial or damaged
    *final* frame — normal crash residue), or ``"corrupt"`` (a CRC or
    decode failure with more log after it). Both :func:`scan_wal` and
    :meth:`WriteAheadLog.stream_frames` consume this walker, so a frame
    classifies identically everywhere.
    """
    while True:
        header = log.read(_FRAME_HEADER.size)
        if len(header) < _FRAME_HEADER.size:
            yield ("clean" if not header else "torn"), position, position, None
            return
        length, crc = _FRAME_HEADER.unpack(header)
        payload = log.read(length)
        if len(payload) < length:
            yield "torn", position, position, None
            return
        ops = None
        if zlib.crc32(payload) & 0xFFFFFFFF == crc:
            ops = _decode_ops(payload)
        if ops is None:
            # A bad *last* frame is indistinguishable from a torn
            # append racing a crash; only damage followed by more
            # log proves an interior frame rotted.
            frame_end = position + _FRAME_HEADER.size + length
            state = "corrupt" if frame_end < total else "torn"
            yield state, position, position, None
            return
        end = position + _FRAME_HEADER.size + length
        yield "frame", position, end, ops
        position = end


def scan_wal(path: str) -> WalScan:
    """Classify a WAL file's replayable prefix (see :class:`WalScan`)."""
    if not os.path.exists(path):
        return WalScan(state="clean", frames=0, valid_bytes=0, total_bytes=0)
    total = os.path.getsize(path)
    frames = 0
    position = 0
    state = "clean"
    with open(path, "rb") as log:
        for kind, _start, end, _ops in _walk_frames(log, 0, total):
            if kind == "frame":
                frames += 1
                position = end
            else:
                state = kind
    return WalScan(
        state=state, frames=frames, valid_bytes=position, total_bytes=total
    )


def fsync_file(file) -> None:
    """Flush and fsync ``file``, honouring fault-injection wrappers.

    A :class:`~repro.faults.FaultyFile` exposes its own ``fsync`` so the
    fault plan can observe (and fail) the sync; plain files fall back to
    ``os.fsync`` on the descriptor.
    """
    sync = getattr(file, "fsync", None)
    if callable(sync):
        sync()
        return
    file.flush()
    os.fsync(file.fileno())


def fsync_dir(directory: str) -> None:
    """fsync a directory so file creations/renames inside it are durable.

    POSIX only makes a new directory entry durable once the *directory*
    is synced; without this, a freshly created (or truncated-and-
    recreated) WAL can vanish wholesale on power loss. Platforms that
    cannot open directories simply skip the sync.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only redo log of commit batches."""

    def __init__(
        self, path: str, sync: bool = False, fault_plan=None
    ) -> None:
        self._path = path
        self._sync = sync
        self._fault_plan = fault_plan
        self._generation = 0
        self._failed = False
        existed = os.path.exists(path)
        self._file = self._wrap(open(path, "ab"))
        self._bytes = os.path.getsize(path)
        if not existed:
            fsync_dir(os.path.dirname(path))

    def _wrap(self, file):
        if self._fault_plan is None:
            return file
        return self._fault_plan.wrap(file, "wal")

    @property
    def path(self) -> str:
        """Backing file path."""
        return self._path

    @property
    def size_bytes(self) -> int:
        """Current log size."""
        return self._bytes

    @property
    def generation(self) -> int:
        """Truncation epoch: byte offsets are only comparable within one
        generation, and every :meth:`truncate` starts a new one."""
        return self._generation

    @staticmethod
    def encode_frame(batch: list[tuple[bytes, bytes | None]]) -> bytes:
        """Encode one commit batch as a self-delimiting CRC frame."""
        if not batch:
            raise ConfigurationError("empty commit batch")
        payload = bytearray()
        for key, value in batch:
            if value is TOMBSTONE:
                payload += _OP.pack(_OP_DELETE, len(key), 0) + key
            else:
                payload += _OP.pack(_OP_PUT, len(key), len(value)) + key + value
        header = _FRAME_HEADER.pack(
            len(payload), zlib.crc32(bytes(payload)) & 0xFFFFFFFF
        )
        return header + bytes(payload)

    def _check_usable(self) -> None:
        if self._failed:
            raise WalFailedError(
                f"write-ahead log {self._path!r} is failed closed after an "
                "unrecoverable append error"
            )

    def _restore_cursor(self) -> None:
        """Drop any partially appended bytes after a failed write/fsync.

        The cursor (``self._bytes``) is only advanced once the whole
        append succeeded, so on error the physical file may hold torn or
        even complete-but-unsynced frames past it. Nothing beyond the
        cursor was acked or applied, so truncating back to it keeps the
        log and the cursor agreeing. If even that fails, the log fails
        closed rather than hand out offsets that lie.
        """
        try:
            try:
                self._file.flush()
            except OSError:
                pass
            os.ftruncate(self._file.fileno(), self._bytes)
        except OSError:
            self._failed = True

    def append(
        self, batch: list[tuple[bytes, bytes | None]]
    ) -> tuple[int, int]:
        """Durably record one commit batch of (key, value-or-None) ops.

        Returns the ``(offset, length)`` of the appended frame so callers
        (replication shipping, incremental tooling) can address it later
        via :meth:`replay_from` or :meth:`stream_frames`.
        """
        self._check_usable()
        frame = self.encode_frame(batch)
        try:
            self._file.write(frame)
            self._file.flush()
            if self._sync:
                fsync_file(self._file)
        except Exception:
            self._restore_cursor()
            raise
        offset = self._bytes
        length = len(frame)
        self._bytes = offset + length
        return offset, length

    def append_group(
        self, batches: list[list[tuple[bytes, bytes | None]]]
    ) -> list[tuple[int, int]]:
        """Append several batches as consecutive frames in one write.

        Each batch keeps its own frame (so per-batch offsets stay
        addressable for replication cursors), but the group lands with a
        single ``write``+``flush`` and **no** fsync — the group-commit
        leader syncs once for the whole group via :meth:`sync`. Returns
        one ``(offset, length)`` per batch, in order.
        """
        self._check_usable()
        frames = [self.encode_frame(batch) for batch in batches]
        try:
            self._file.write(b"".join(frames))
            self._file.flush()
        except Exception:
            self._restore_cursor()
            raise
        spans: list[tuple[int, int]] = []
        offset = self._bytes
        for frame in frames:
            spans.append((offset, len(frame)))
            offset += len(frame)
        self._bytes = offset
        return spans

    def sync(self) -> None:
        """fsync everything appended so far (group-commit leader sync)."""
        self._check_usable()
        fsync_file(self._file)

    def rollback(self, offset: int) -> None:
        """Physically discard unacked bytes back to ``offset``.

        Used when a group's fsync failed and nothing past ``offset`` was
        applied or acked; fails the log closed if the truncate itself
        fails.
        """
        try:
            os.ftruncate(self._file.fileno(), offset)
        except OSError:
            self._failed = True
            raise
        self._bytes = offset

    def fail_closed(self) -> None:
        """Mark the log unusable: every later append raises."""
        self._failed = True

    def truncate(self) -> None:
        """Discard the log (all buffered state reached durable runs)."""
        self._file.close()
        self._file = open(self._path, "wb")
        self._file.close()
        self._file = self._wrap(open(self._path, "ab"))
        self._bytes = 0
        self._generation += 1
        fsync_dir(os.path.dirname(self._path))

    def close(self) -> None:
        """Close the log file."""
        if not self._file.closed:
            self._file.close()

    @staticmethod
    def stream_frames(
        path: str, offset: int = 0
    ) -> Iterator[tuple[int, int, list[tuple[bytes, bytes | None]]]]:
        """Yield ``(frame_offset, frame_end, ops)`` for every intact frame
        starting at byte ``offset``, stopping at the first torn or corrupt
        frame (crash-consistent prefix streaming).

        ``offset`` must land on a frame boundary — replication cursors
        only ever hold values returned by :meth:`append` or yielded here,
        so a misaligned offset simply reads as a corrupt frame and stops.
        """
        if offset < 0:
            raise ConfigurationError("wal offset must be non-negative")
        if not os.path.exists(path):
            return
        total = os.path.getsize(path)
        with open(path, "rb") as log:
            if offset:
                log.seek(offset)
            for kind, start, end, ops in _walk_frames(log, offset, total):
                if kind != "frame":
                    return  # clean end, torn tail, or corrupt frame
                yield start, end, ops

    @staticmethod
    def replay_from(
        path: str, offset: int
    ) -> Iterator[tuple[bytes, bytes | None]]:
        """Yield every operation from intact frames at byte ``offset``
        onwards, with the same torn-tail tolerance as :meth:`replay`."""
        for _start, _end, ops in WriteAheadLog.stream_frames(path, offset):
            yield from ops

    @staticmethod
    def replay(path: str) -> Iterator[tuple[bytes, bytes | None]]:
        """Yield every operation from intact frames, stopping at the
        first torn or corrupt frame (crash-consistent prefix replay)."""
        yield from WriteAheadLog.replay_from(path, 0)


def _decode_ops(payload: bytes) -> list[tuple[bytes, bytes | None]] | None:
    """Decode one frame payload into ops; ``None`` if malformed."""
    pos = 0
    length = len(payload)
    ops: list[tuple[bytes, bytes | None]] = []
    while pos < length:
        if pos + _OP.size > length:
            return None
        opcode, key_len, val_len = _OP.unpack_from(payload, pos)
        pos += _OP.size
        key = payload[pos : pos + key_len]
        pos += key_len
        if opcode == _OP_PUT:
            value = payload[pos : pos + val_len]
            pos += val_len
            ops.append((key, value))
        elif opcode == _OP_DELETE:
            ops.append((key, TOMBSTONE))
        else:
            return None
    return ops
