"""A real, embeddable LSM key-value storage engine.

Built from scratch on the substrates the paper's testbed assumes:
skip-list memory components, immutable sorted-run files with Bloom
filters and block indexes, a CRC-framed write-ahead log, a crash-safe
manifest, reconciling merge iterators, an I/O rate limiter with periodic
forces, and a compaction driver that executes the *same* merge policies
and schedulers as the simulator.
"""

from .blockcache import BlockCache
from .blockcodec import BlockCodec, available_codecs, get_codec, register_codec
from .bloom import BloomFilter
from .compaction import CompactionManager, MergeJob, build_policy, build_scheduler
from .filters import (
    CuckooFilter,
    FilterSpec,
    PointFilter,
    available_filters,
    build_filter,
    load_filter,
    register_filter,
)
from .integrity import IntegrityReport, verify_store
from .datastore import LSMStore, MemorySignals, StoreStats, WriteTiming
from .iterators import reconcile_get, reconciling_iterator
from .manifest import Manifest, RunRecord
from .memtable import MemTable
from .options import StoreOptions, TOMBSTONE
from .quarantine import QuarantineEntry, QuarantineSet
from .ratelimiter import RateLimiter, SyncPolicy
from .secondary import IndexedStore, decode_secondary_key, encode_secondary_key
from .sstable import CURRENT_FORMAT_VERSION, RunStats, SSTableReader, SSTableWriter
from .wal import WalScan, WriteAheadLog, scan_wal

__all__ = [
    "BlockCache",
    "BlockCodec",
    "BloomFilter",
    "CURRENT_FORMAT_VERSION",
    "CuckooFilter",
    "FilterSpec",
    "PointFilter",
    "CompactionManager",
    "IntegrityReport",
    "IndexedStore",
    "LSMStore",
    "Manifest",
    "MemorySignals",
    "MemTable",
    "MergeJob",
    "QuarantineEntry",
    "QuarantineSet",
    "RateLimiter",
    "RunRecord",
    "RunStats",
    "SSTableReader",
    "SSTableWriter",
    "StoreOptions",
    "StoreStats",
    "SyncPolicy",
    "TOMBSTONE",
    "WalScan",
    "WriteAheadLog",
    "WriteTiming",
    "scan_wal",
    "available_codecs",
    "available_filters",
    "build_filter",
    "build_policy",
    "build_scheduler",
    "get_codec",
    "load_filter",
    "register_codec",
    "register_filter",
    "verify_store",
    "decode_secondary_key",
    "encode_secondary_key",
    "reconcile_get",
    "reconciling_iterator",
]
