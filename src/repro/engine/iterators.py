"""Reconciling merge iterators over multiple components (Section 2.1).

A query over an LSM-tree must reconcile entries with identical keys across
components: entries from newer components override older ones, and a
tombstone (anti-matter) hides every older version of its key. The
:func:`reconciling_iterator` takes per-component ordered iterators,
*newest first*, and yields each live key's winning entry exactly once via
a heap with recency tie-breaking — the standard priority-queue scan the
paper describes for range queries.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from .options import TOMBSTONE

#: Item layout on the heap: (key, recency_rank, value, source_iterator).
#: recency_rank 0 is the newest component, so for equal keys the heap
#: pops the newest entry first and older duplicates are skipped.


def reconciling_iterator(
    sources: Iterable[Iterator[tuple[bytes, bytes | None]]],
    keep_tombstones: bool = False,
) -> Iterator[tuple[bytes, bytes | None]]:
    """Merge ordered per-component streams, newest component first.

    With ``keep_tombstones=False`` (query semantics) deleted keys are
    elided entirely; with True (merge-to-intermediate-level semantics)
    the winning tombstone is emitted so it can keep shadowing older
    components that are not part of this merge.
    """
    heap: list[tuple[bytes, int, bytes | None, Iterator]] = []
    for rank, source in enumerate(sources):
        for key, value in source:
            heapq.heappush(heap, (key, rank, value, source))
            break
    last_key: bytes | None = None
    while heap:
        key, rank, value, source = heapq.heappop(heap)
        for next_key, next_value in source:
            heapq.heappush(heap, (next_key, rank, next_value, source))
            break
        if key == last_key:
            continue  # an older version of an already-emitted key
        last_key = key
        if value is TOMBSTONE and not keep_tombstones:
            continue
        yield key, value


def reconcile_get(
    sources: Iterable[tuple[bool, bytes | None]],
) -> tuple[bool, bytes | None]:
    """Point-lookup reconciliation: first hit wins, newest first.

    ``sources`` yields per-component ``(found, value)`` pairs ordered
    newest component first (the caller short-circuits by generating
    lazily); a found tombstone terminates the search with "absent".
    """
    for found, value in sources:
        if found:
            if value is TOMBSTONE:
                return False, None
            return True, value
    return False, None
