"""Pluggable per-block compression codecs for sorted-run data blocks.

Every version-2 data block starts with a one-byte codec id naming the
transform applied to its payload (see :mod:`repro.engine.sstable` for
the framing). The registry maps codec *names* (what ``StoreOptions``
and the CLI speak) to codec objects, and codec *ids* (what the on-disk
header stores) back to them, so new codecs can be added without
touching the file format: register an object with a fresh id and both
directions resolve.

Two codecs ship by default:

* ``none`` (id 0) — identity; the compatibility baseline. Version-1
  runs, which predate the block header, behave as if every block used
  it.
* ``zlib`` (id 1) — stdlib DEFLATE at the default level; no external
  dependencies.

Writers may also *fall back* per block: when a codec's output is not
smaller than its input the block is stored raw under id 0, so the
header — not the run-level default — is always authoritative for how
to decode a given block.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError, CorruptionError

#: Codec id shared by the ``none`` codec and per-block raw fallbacks.
NONE_CODEC_ID = 0


@dataclass(frozen=True)
class BlockCodec:
    """One registered transform: a name, a wire id, and the two maps."""

    name: str
    codec_id: int
    compress: Callable[[bytes], bytes] = field(repr=False)
    decompress: Callable[[bytes], bytes] = field(repr=False)


_BY_NAME: dict[str, BlockCodec] = {}
_BY_ID: dict[int, BlockCodec] = {}


def register_codec(codec: BlockCodec) -> BlockCodec:
    """Add a codec to the registry; name and id must both be unused."""
    if not 0 <= codec.codec_id <= 0xFF:
        raise ConfigurationError(
            f"codec id {codec.codec_id} does not fit the one-byte header"
        )
    if codec.name in _BY_NAME:
        raise ConfigurationError(f"codec {codec.name!r} already registered")
    if codec.codec_id in _BY_ID:
        raise ConfigurationError(
            f"codec id {codec.codec_id} already registered"
        )
    _BY_NAME[codec.name] = codec
    _BY_ID[codec.codec_id] = codec
    return codec


def available_codecs() -> tuple[str, ...]:
    """Registered codec names, registration order."""
    return tuple(_BY_NAME)


def get_codec(name: str) -> BlockCodec:
    """Resolve a codec by configuration name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown block codec {name!r}; "
            f"available: {', '.join(_BY_NAME)}"
        ) from None


def codec_by_id(codec_id: int) -> BlockCodec:
    """Resolve a codec by on-disk id.

    An unknown id in a block header means either rot in the header
    itself or a file from a newer engine — both are unreadable, so this
    raises :class:`CorruptionError` rather than ``ConfigurationError``.
    """
    try:
        return _BY_ID[codec_id]
    except KeyError:
        raise CorruptionError(
            f"unknown block codec id {codec_id}"
        ) from None


register_codec(
    BlockCodec(
        name="none",
        codec_id=NONE_CODEC_ID,
        compress=lambda payload: payload,
        decompress=lambda payload: payload,
    )
)
register_codec(
    BlockCodec(
        name="zlib",
        codec_id=1,
        compress=lambda payload: zlib.compress(payload, 6),
        decompress=zlib.decompress,
    )
)
