"""Plain-text reporting: the tables and series the benchmarks print.

Benchmarks reproduce figures, so their output is text: aligned tables for
parameter sweeps and coarse unicode sparklines for "instantaneous
throughput over time" panels. Everything returns strings so tests can
assert on them; the benches print to stdout and also append to
``results/`` files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render dict-rows as an aligned plain-text table."""
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    columns = list(columns) if columns else list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[idx]) for line in rendered))
        for idx, col in enumerate(columns)
    ]
    header = "  ".join(col.rjust(width) for col, width in zip(columns, widths))
    rule = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.rjust(width) for value, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, rule, *body])


def sparkline(values: Iterable[float], width: int = 72) -> str:
    """A unicode sparkline of a series, downsampled to ``width`` chars.

    Stalls render as the lowest glyph, so a write-stall-riddled
    throughput series is visibly gap-toothed in benchmark output.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    if data.size > width:
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.asarray(
            [data[lo:hi].mean() if hi > lo else data[min(lo, data.size - 1)]
             for lo, hi in zip(edges[:-1], edges[1:])]
        )
    top = float(data.max())
    if top <= 0:
        return _SPARK_LEVELS[0] * data.size
    scaled = np.clip(data / top * (len(_SPARK_LEVELS) - 1), 0, None)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def format_latency_profile(profile: Mapping[float, float]) -> str:
    """Render a percentile profile as one compact line."""
    parts = [
        f"p{level:g}={value:.3f}s" for level, value in sorted(profile.items())
    ]
    return "  ".join(parts)


def emit(text: str, results_file: str | None = None) -> None:
    """Print a report block and optionally append it to ``results/``."""
    print(text)
    if results_file is not None:
        path = Path("results") / results_file
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as sink:
            sink.write(text + "\n")
