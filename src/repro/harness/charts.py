"""Multi-line ASCII charts for benchmark output.

Sparklines (``report.sparkline``) compress a series to one line; some
figures deserve an actual plot — multiple labelled series on shared axes,
with a y-scale. :func:`ascii_chart` renders exactly that with plain
characters so figure output stays terminal- and logfile-friendly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

#: Glyphs assigned to series in declaration order.
_GLYPHS = "*o+x#@%&"


def _resample(values: np.ndarray, width: int) -> np.ndarray:
    if values.size <= width:
        return values
    edges = np.linspace(0, values.size, width + 1).astype(int)
    return np.asarray(
        [
            values[lo:hi].mean() if hi > lo else values[min(lo, values.size - 1)]
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
    )


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 68,
    height: int = 12,
    y_label: str = "",
    x_label: str = "time",
) -> str:
    """Render labelled series as a fixed-size ASCII chart.

    All series share the y-axis (scaled to the global maximum) and the
    x-axis (each series resampled to ``width`` columns). Returns a
    multi-line string: legend, plot rows with y-tick labels, and an
    x-axis rule.
    """
    if not series:
        raise ConfigurationError("ascii_chart needs at least one series")
    if width < 8 or height < 3:
        raise ConfigurationError("chart area too small")
    resampled: dict[str, np.ndarray] = {}
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ConfigurationError(f"series {name!r} is empty")
        resampled[name] = _resample(arr, width)
    top = max(float(arr.max()) for arr in resampled.values())
    top = top if top > 0 else 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, arr) in enumerate(resampled.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for column, value in enumerate(arr[:width]):
            row = int(round((height - 1) * (1.0 - value / top)))
            row = min(max(row, 0), height - 1)
            current = grid[row][column]
            grid[row][column] = "!" if current not in (" ", glyph) else glyph

    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(resampled)
    )
    lines = [legend + (f"   (y: {y_label})" if y_label else "")]
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        tick = f"{top * fraction:>9.1f} |"
        lines.append(tick + "".join(row))
    lines.append(" " * 9 + " +" + "-" * width)
    lines.append(" " * 11 + x_label)
    return "\n".join(lines)
