"""Parameter sweeps: the multi-configuration figures.

Each sweep runs the two-phase methodology across one axis — size ratio
(Figure 11), utilization (Figure 27), partition size (Figure 24) — and
returns one summary row per point, ready for
:func:`repro.harness.report.format_table`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import ConfigurationError
from .spec import ExperimentSpec
from .twophase import running_phase, testing_phase, two_phase


def size_ratio_sweep(
    policy: str,
    ratios: Sequence[int],
    schedulers: Sequence[str] = ("fair", "greedy"),
    scale: float = 128.0,
    **spec_overrides,
) -> list[dict[str, object]]:
    """Figure 11: max throughput and p99 latency across size ratios.

    For each ratio, the maximum throughput is measured once with the fair
    scheduler (the paper's testing-phase rule), then each runtime
    scheduler is evaluated at 95% of that number. Leveling uses the
    dynamic level size optimization, as the paper does for this figure.
    """
    rows: list[dict[str, object]] = []
    for ratio in ratios:
        if policy == "tiering":
            base = ExperimentSpec.tiering(
                size_ratio=ratio, scale=scale, **spec_overrides
            )
        elif policy == "leveling":
            base = ExperimentSpec.leveling(
                size_ratio=ratio,
                scale=scale,
                dynamic_level_sizes=True,
                **spec_overrides,
            )
        else:
            raise ConfigurationError(f"unknown policy {policy!r}")
        max_throughput, _ = testing_phase(base)
        row: dict[str, object] = {
            "policy": policy,
            "T": ratio,
            "max_throughput": max_throughput,
        }
        for scheduler in schedulers:
            result = running_phase(
                base.with_(scheduler=scheduler),
                max_throughput=max_throughput,
            )
            profile = result.write_latency_profile((99.0,))
            row[f"p99_{scheduler}"] = profile[99.0]
            row[f"stalls_{scheduler}"] = float(result.stall_count())
        rows.append(row)
    return rows


def utilization_sweep(
    spec: ExperimentSpec,
    utilizations: Sequence[float],
    max_throughput: float | None = None,
) -> list[dict[str, object]]:
    """Figure 27: p99 write latency as a function of system utilization."""
    if max_throughput is None:
        max_throughput, _ = testing_phase(spec)
    rows = []
    for utilization in utilizations:
        if not 0.0 < utilization < 1.0:
            raise ConfigurationError("utilization must be within (0, 1)")
        result = running_phase(
            spec, arrival_rate=utilization * max_throughput
        )
        profile = result.write_latency_profile((50.0, 99.0))
        rows.append(
            {
                "utilization": utilization,
                "arrival_rate": utilization * max_throughput,
                "p50": profile[50.0],
                "p99": profile[99.0],
                "stalls": float(result.stall_count()),
            }
        )
    return rows


def partition_size_sweep(
    file_mibs: Sequence[float],
    scale: float = 128.0,
    testing_fix: bool = True,
    **spec_overrides,
) -> list[dict[str, object]]:
    """Figure 24: write throughput and p99 latency across partition sizes.

    As the partition file grows toward the level size, partitioned merges
    degenerate into full merges and the single-threaded scheduler's
    stalls reappear.
    """
    rows = []
    for file_mib in file_mibs:
        spec = ExperimentSpec.partitioned(
            file_mib=file_mib, scale=scale, testing_fix=testing_fix, **spec_overrides
        )
        outcome = two_phase(spec)
        profile = outcome.running.write_latency_profile((99.0,))
        rows.append(
            {
                "file_mib": file_mib,
                "max_throughput": outcome.max_write_throughput,
                "p99": profile[99.0],
                "stalls": float(outcome.running.stall_count()),
            }
        )
    return rows


def scheduler_running_results(
    make_spec: Callable[[str], ExperimentSpec],
    schedulers: Iterable[str] = ("single", "fair", "greedy"),
):
    """Run each scheduler's running phase against identical arrivals.

    Returns ``(arrival_rate, {scheduler: SimResult})`` — the raw results
    behind :func:`compare_schedulers`, for callers that want the full
    series (throughput charts) rather than summary rows.
    """
    schedulers = list(schedulers)
    base = make_spec(schedulers[0])
    max_throughput, _ = testing_phase(base)
    results = {
        scheduler: running_phase(
            make_spec(scheduler), max_throughput=max_throughput
        )
        for scheduler in schedulers
    }
    return base.utilization * max_throughput, results


def compare_schedulers(
    make_spec: Callable[[str], ExperimentSpec],
    schedulers: Iterable[str] = ("single", "fair", "greedy"),
) -> list[dict[str, object]]:
    """Figures 9/10 in tabular form: one two-phase row per scheduler.

    The testing phase is run once (fair), and each runtime scheduler is
    evaluated against the same arrival rate.
    """
    arrival_rate, results = scheduler_running_results(make_spec, schedulers)
    rows = []
    for scheduler, result in results.items():
        profile = result.write_latency_profile((50.0, 99.0, 99.9))
        rows.append(
            {
                "scheduler": scheduler,
                "arrival_rate": arrival_rate,
                "stalls": float(result.stall_count()),
                "stall_seconds": result.stall_time,
                "max_components": result.components.maximum(),
                "p50": profile[50.0],
                "p99": profile[99.0],
                "p999": profile[99.9],
            }
        )
    return rows
