"""Experiment specifications: declarative descriptions of one LSM setup.

An :class:`ExperimentSpec` pins down everything a two-phase evaluation
needs — the testbed config, the merge policy, the runtime scheduler, the
component constraint, the write control, the workload distribution, and
the phase durations — so a benchmark is one constructor call plus
:func:`repro.harness.two_phase`. The classmethod builders encode the
paper's experimental setups (Sections 4-7) with their exact defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable

from ..core import model
from ..core.components import Component, UidAllocator
from ..core.policies import (
    LazyLevelingPolicy,
    LevelingPolicy,
    MergePolicy,
    PartitionedLevelingPolicy,
    SizeTieredPolicy,
    TieringPolicy,
)
from ..core.schedulers import (
    ComponentConstraint,
    FairScheduler,
    GlobalComponentConstraint,
    GreedyScheduler,
    LevelZeroConstraint,
    LocalComponentConstraint,
    MergeScheduler,
    RateLimitControl,
    SingleThreadedScheduler,
    SlowdownControl,
    SpringGearControl,
    SpringGearScheduler,
    StopControl,
    WriteControl,
)
from ..errors import ConfigurationError
from ..sim import (
    SimConfig,
    bench_config,
    loaded_lazy_leveling_tree,
    loaded_leveling_tree,
    loaded_partitioned_tree,
    loaded_size_tiered_stack,
    loaded_tiering_tree,
)
from ..workloads import KeyspaceModel, UniformKeys, ZipfianKeys

#: Default benchmark scale factor (see :func:`repro.sim.bench_config`).
DEFAULT_SCALE = 128.0

#: Phase durations. The running phase matches the paper's 2 hours. The
#: *testing* phase defaults to 4 simulated hours with a 1-hour warm-up
#: exclusion: the measured maximum only converges once the window spans
#: several bottom-level merge cycles, and on the scaled testbed a 2-hour
#: window over-weights the cheap periods between giant merges by ~8%,
#: which at 95% utilization is the difference between reproducing
#: Figures 11b/12 and contradicting them. (Virtual hours are nearly free;
#: the paper's physical testbed did not have that luxury.)
TESTING_DURATION = 14400.0
RUNNING_DURATION = 7200.0
WARMUP = 3600.0


def make_scheduler(name: str, policy: MergePolicy, config: SimConfig) -> MergeScheduler:
    """Build a scheduler by name: single / fair / greedy / greedy-k / spring."""
    if name == "single":
        return SingleThreadedScheduler()
    if name == "fair":
        return FairScheduler()
    if name == "greedy":
        return GreedyScheduler()
    if name.startswith("greedy-"):
        return GreedyScheduler(concurrency=int(name.split("-", 1)[1]))
    if name == "spring":
        capacities: dict[int, float] = {}
        if isinstance(policy, LevelingPolicy):
            capacities = {
                level: policy.level_capacity_bytes(level)
                for level in range(1, policy.levels + 1)
            }
        return SpringGearScheduler(capacities)
    raise ConfigurationError(f"unknown scheduler {name!r}")


def make_constraint(
    name: str, policy: MergePolicy, factor: float = 2.0
) -> ComponentConstraint:
    """Build a constraint by name: global / local / level0."""
    if name == "global":
        return GlobalComponentConstraint(
            model.default_component_limit(policy.expected_components(), factor)
        )
    if name == "local":
        if isinstance(policy, TieringPolicy):
            per_level = int(math.ceil(factor * policy.size_ratio))
        else:
            per_level = int(math.ceil(factor))
        return LocalComponentConstraint(per_level)
    if name == "level0":
        return LevelZeroConstraint(stop=12)
    raise ConfigurationError(f"unknown constraint {name!r}")


@dataclass(frozen=True)
class ExperimentSpec:
    """A fully pinned-down LSM experiment (see module docstring)."""

    name: str
    config: SimConfig
    policy_factory: Callable[[], MergePolicy]
    bootstrap: Callable[
        [MergePolicy, KeyspaceModel, SimConfig, UidAllocator], list[Component]
    ]
    scheduler: str = "greedy"
    testing_scheduler: str = "fair"
    constraint: str = "global"
    constraint_factor: float = 2.0
    control_factory: Callable[[], WriteControl] = StopControl
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    keyspace_factory: Callable[[], KeyspaceModel] | None = None
    testing_policy_factory: Callable[[], MergePolicy] | None = None
    testing_duration: float = TESTING_DURATION
    running_duration: float = RUNNING_DURATION
    warmup: float = WARMUP
    utilization: float = 0.95
    window: float = 30.0

    def keyspace(self) -> KeyspaceModel:
        """The analytic keyspace model for this spec's distribution.

        ``keyspace_factory`` overrides the distribution-derived default —
        used e.g. by the Table 1 validation benchmark, which needs a
        reclamation-free (very sparse) keyspace.
        """
        if self.keyspace_factory is not None:
            return self.keyspace_factory()
        if self.distribution == "uniform":
            return KeyspaceModel(UniformKeys(self.config.total_keys))
        if self.distribution == "zipf":
            return KeyspaceModel(
                ZipfianKeys(self.config.total_keys, self.zipf_theta)
            )
        raise ConfigurationError(f"unknown distribution {self.distribution!r}")

    def with_(self, **overrides) -> "ExperimentSpec":
        """Functional update."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # the paper's standard setups
    # ------------------------------------------------------------------

    @classmethod
    def tiering(
        cls,
        size_ratio: int = 3,
        scheduler: str = "greedy",
        scale: float = DEFAULT_SCALE,
        distribution: str = "uniform",
        **overrides,
    ) -> "ExperimentSpec":
        """Section 5.2's tiering setup (T=3, eight-ish levels)."""
        config = bench_config(scale)
        levels = model.levels_for_tiering(
            config.total_keys, config.memory_component_entries, size_ratio
        )

        def build() -> TieringPolicy:
            return TieringPolicy(size_ratio, levels)

        return cls(
            name=f"tiering-T{size_ratio}-{scheduler}",
            config=config,
            policy_factory=build,
            bootstrap=loaded_tiering_tree,
            scheduler=scheduler,
            distribution=distribution,
            **overrides,
        )

    @classmethod
    def leveling(
        cls,
        size_ratio: float = 10,
        scheduler: str = "greedy",
        scale: float = DEFAULT_SCALE,
        distribution: str = "uniform",
        dynamic_level_sizes: bool = False,
        **overrides,
    ) -> "ExperimentSpec":
        """Section 5.2's leveling setup (T=10, three levels)."""
        config = bench_config(scale)
        levels = model.levels_for_leveling(
            config.total_keys, config.memory_component_entries, size_ratio
        )
        last_level = config.total_bytes if dynamic_level_sizes else None

        def build() -> LevelingPolicy:
            return LevelingPolicy(
                size_ratio,
                levels,
                config.memory_component_bytes,
                last_level_bytes=last_level,
            )

        return cls(
            name=f"leveling-T{size_ratio}-{scheduler}",
            config=config,
            policy_factory=build,
            bootstrap=loaded_leveling_tree,
            scheduler=scheduler,
            distribution=distribution,
            **overrides,
        )

    @classmethod
    def lazy_leveling(
        cls,
        size_ratio: int = 3,
        scheduler: str = "greedy",
        scale: float = DEFAULT_SCALE,
        distribution: str = "uniform",
        **overrides,
    ) -> "ExperimentSpec":
        """The Dostoevsky-style extension policy (DESIGN.md Section 8):
        tiering at intermediate levels, leveling at the last."""
        config = bench_config(scale)
        levels = model.levels_for_tiering(
            config.total_keys, config.memory_component_entries, size_ratio
        )

        def build() -> LazyLevelingPolicy:
            return LazyLevelingPolicy(size_ratio, max(levels, 2))

        return cls(
            name=f"lazy-leveling-T{size_ratio}-{scheduler}",
            config=config,
            policy_factory=build,
            bootstrap=loaded_lazy_leveling_tree,
            scheduler=scheduler,
            distribution=distribution,
            **overrides,
        )

    @classmethod
    def size_tiered(
        cls,
        size_ratio: float = 1.2,
        min_merge: int = 2,
        max_merge: int = 10,
        scheduler: str = "greedy",
        scale: float = DEFAULT_SCALE,
        testing_fix: bool = False,
        component_cap: int = 50,
        **overrides,
    ) -> "ExperimentSpec":
        """Section 5.3's size-tiered setup (HBase defaults, cap of 50).

        ``testing_fix=True`` applies the paper's solution: the testing
        phase merges exactly ``min_merge`` components.
        """
        config = bench_config(scale)

        def build() -> SizeTieredPolicy:
            return SizeTieredPolicy(
                size_ratio=size_ratio,
                min_merge=min_merge,
                max_merge=max_merge,
                expected_component_cap=component_cap // 2,
            )

        testing_factory = None
        if testing_fix:
            def testing_factory() -> SizeTieredPolicy:  # noqa: E306
                return build().with_always_min(True)

        return cls(
            name=f"size-tiered-{scheduler}{'-fixed' if testing_fix else ''}",
            config=config,
            policy_factory=build,
            bootstrap=loaded_size_tiered_stack,
            scheduler=scheduler,
            testing_policy_factory=testing_factory,
            **overrides,
        )

    @classmethod
    def partitioned(
        cls,
        size_ratio: float = 10,
        file_mib: float = 64.0,
        selection: str = "round-robin",
        scale: float = DEFAULT_SCALE,
        testing_fix: bool = False,
        **overrides,
    ) -> "ExperimentSpec":
        """Section 6's LevelDB setup: 64 MB files, L1 target of ten
        memory components, L0 min-merge 4 and stop threshold 12, one
        single-threaded compaction.

        ``testing_fix=True`` applies Section 6.2's solution: the testing
        phase merges exactly ``T0`` level-0 components.
        """
        config = bench_config(scale)
        level1_target = 10 * config.memory_component_bytes
        max_file = file_mib * 2**20 / scale
        levels = 1
        while level1_target * size_ratio ** (levels - 1) < config.total_bytes:
            levels += 1

        def build() -> PartitionedLevelingPolicy:
            return PartitionedLevelingPolicy(
                size_ratio=size_ratio,
                levels=levels,
                level1_target_bytes=level1_target,
                max_file_bytes=max_file,
                l0_min_merge=4,
                selection=selection,
            )

        testing_factory = None
        if testing_fix:
            def testing_factory() -> PartitionedLevelingPolicy:  # noqa: E306
                return build().with_l0_exact(True)

        return cls(
            name=f"partitioned-{selection}{'-fixed' if testing_fix else ''}",
            config=config,
            policy_factory=build,
            bootstrap=loaded_partitioned_tree,
            scheduler="single",
            testing_scheduler="single",
            constraint="level0",
            testing_policy_factory=testing_factory,
            **overrides,
        )

    @classmethod
    def blsm(
        cls,
        scale: float = DEFAULT_SCALE,
        distribution: str = "uniform",
        **overrides,
    ) -> "ExperimentSpec":
        """Section 4.2's bLSM setup: 1 GB memory component, size ratio 10,
        two disk levels, spring-and-gear scheduling with graceful
        write slowdown, and bLSM's local two-components-per-level
        constraint.

        The local budget is three per level under this library's
        "violated at the budget" convention: bLSM's *steady state* keeps
        two components per level (the full ``C'_i`` being merged away
        plus the forming ``C_i``), so a budget of two would block writes
        for the entire duration of every deep merge — precisely the
        extended blocking bLSM exists to avoid. Three means "the two
        structural components plus no more than one straggler".
        """
        config = bench_config(scale).with_(
            memory_component_bytes=1024 * 2**20 / scale,
            reallocation_interval=5.0,
        )
        levels = 2

        def build() -> LevelingPolicy:
            return LevelingPolicy(10, levels, config.memory_component_bytes)

        capacities = {
            level: build().level_capacity_bytes(level)
            for level in range(1, levels + 1)
        }

        return cls(
            name="blsm-spring-gear",
            config=config,
            policy_factory=build,
            bootstrap=loaded_leveling_tree,
            scheduler="spring",
            testing_scheduler="spring",
            constraint="local",
            constraint_factor=3.0,
            control_factory=lambda: SpringGearControl(
                config.entry_bytes, capacities
            ),
            distribution=distribution,
            **overrides,
        )


def make_control(name: str, config: SimConfig, rate: float = 0.0) -> WriteControl:
    """Build a write control by name (stop / limit / slowdown / spring)."""
    if name == "stop":
        return StopControl()
    if name == "limit":
        return RateLimitControl(rate)
    if name == "slowdown":
        return SlowdownControl(base_rate=config.memory_write_rate)
    if name == "spring":
        return SpringGearControl(config.entry_bytes)
    raise ConfigurationError(f"unknown write control {name!r}")
