"""The two-phase evaluation methodology (Sections 1 and 3.2).

Phase one (*testing*): drive the LSM-tree with the closed system model —
write as much data as possible — and measure its maximum write throughput,
excluding a warm-up prefix. Phase two (*running*): drive the same tree
with the open system model at a constant arrival rate set to a high
fraction (default 95%) of the measured maximum, and measure percentile
*write* latencies, which include queuing time. If the running phase shows
large latencies, the measured maximum was not sustainable.

The testing phase defaults to the fair scheduler (the paper's
recommendation: it starves nothing, so the number it reports is honest)
and to the spec's ``testing_policy_factory`` when the policy needs a
determinism fix (size-tiered min-merge, partitioned exact-``T0``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.components import UidAllocator
from ..errors import ConfigurationError
from ..sim import SimResult, SimulatedLSMTree
from ..workloads import ArrivalProcess, ClosedArrivals, ConstantArrivals
from .spec import ExperimentSpec, make_constraint, make_scheduler


@dataclass(frozen=True)
class TwoPhaseOutcome:
    """Everything the two-phase methodology reports for one setup."""

    spec: ExperimentSpec
    testing: SimResult
    running: SimResult
    max_write_throughput: float
    arrival_rate: float

    @property
    def p99_write_latency(self) -> float:
        """The headline number: 99th percentile write latency (seconds)."""
        return self.running.write_latency_profile((99.0,))[99.0]

    @property
    def sustainable(self) -> bool:
        """Operational check: did the running phase stay stall-free and
        drain its queue? (The paper's criterion for a usable maximum.)"""
        return (
            self.running.stall_count() == 0
            and self.running.final_queue_length < self.arrival_rate
        )

    def summary(self) -> dict[str, float]:
        """Headline metrics as a flat dict (for report tables)."""
        latencies = self.running.write_latency_profile((50.0, 99.0, 99.9))
        return {
            "max_throughput": self.max_write_throughput,
            "arrival_rate": self.arrival_rate,
            "stalls": float(self.running.stall_count()),
            "stall_seconds": self.running.stall_time,
            "max_components": self.running.components.maximum(),
            "p50": latencies[50.0],
            "p99": latencies[99.0],
            "p999": latencies[99.9],
        }


def build_tree(
    spec: ExperimentSpec,
    arrivals: ArrivalProcess,
    scheduler: str | None = None,
    testing: bool = False,
) -> SimulatedLSMTree:
    """Construct the simulated tree for one phase of a spec."""
    if testing and spec.testing_policy_factory is not None:
        policy = spec.testing_policy_factory()
    else:
        policy = spec.policy_factory()
    scheduler_name = scheduler or (
        spec.testing_scheduler if testing else spec.scheduler
    )
    keyspace = spec.keyspace()
    components = spec.bootstrap(policy, keyspace, spec.config, UidAllocator())
    return SimulatedLSMTree(
        config=spec.config,
        policy=policy,
        scheduler=make_scheduler(scheduler_name, policy, spec.config),
        constraint=make_constraint(
            spec.constraint, policy, spec.constraint_factor
        ),
        keyspace=keyspace,
        arrivals=arrivals,
        write_control=spec.control_factory(),
        initial_components=components,
        window=spec.window,
    )


def testing_phase(
    spec: ExperimentSpec, scheduler: str | None = None
) -> tuple[float, SimResult]:
    """Measure the maximum write throughput under the closed model.

    Returns ``(throughput, result)``; the throughput excludes the spec's
    warm-up prefix, mirroring the paper's exclusion of the initial
    20 minutes.
    """
    tree = build_tree(spec, ClosedArrivals(), scheduler=scheduler, testing=True)
    result = tree.run(spec.testing_duration)
    return result.measured_throughput(spec.warmup), result


def running_phase(
    spec: ExperimentSpec,
    arrival_rate: float | None = None,
    max_throughput: float | None = None,
    arrivals: ArrivalProcess | None = None,
    scheduler: str | None = None,
) -> SimResult:
    """Evaluate write latencies under the open model.

    The arrival process defaults to constant arrivals at
    ``spec.utilization * max_throughput`` (or an explicit
    ``arrival_rate``); pass ``arrivals`` for bursty experiments.
    """
    if arrivals is None:
        if arrival_rate is None:
            if max_throughput is None:
                raise ConfigurationError(
                    "running_phase needs an arrival rate, a measured maximum "
                    "throughput, or an explicit arrival process"
                )
            arrival_rate = spec.utilization * max_throughput
        arrivals = ConstantArrivals(arrival_rate)
    tree = build_tree(spec, arrivals, scheduler=scheduler, testing=False)
    return tree.run(spec.running_duration)


def two_phase(spec: ExperimentSpec) -> TwoPhaseOutcome:
    """Run the full methodology: testing phase, then running phase at
    ``spec.utilization`` of the measured maximum."""
    max_throughput, testing_result = testing_phase(spec)
    arrival_rate = spec.utilization * max_throughput
    running_result = running_phase(spec, arrival_rate=arrival_rate)
    return TwoPhaseOutcome(
        spec=spec,
        testing=testing_result,
        running=running_result,
        max_write_throughput=max_throughput,
        arrival_rate=arrival_rate,
    )
