"""The two-phase evaluation harness (the paper's methodology contribution)."""

from .charts import ascii_chart
from .report import emit, format_latency_profile, format_table, sparkline
from .spec import (
    DEFAULT_SCALE,
    ExperimentSpec,
    make_constraint,
    make_control,
    make_scheduler,
)
from .sweeps import (
    compare_schedulers,
    scheduler_running_results,
    partition_size_sweep,
    size_ratio_sweep,
    utilization_sweep,
)
from .twophase import (
    TwoPhaseOutcome,
    build_tree,
    running_phase,
    testing_phase,
    two_phase,
)

__all__ = [
    "DEFAULT_SCALE",
    "ascii_chart",
    "ExperimentSpec",
    "TwoPhaseOutcome",
    "build_tree",
    "compare_schedulers",
    "emit",
    "format_latency_profile",
    "format_table",
    "make_constraint",
    "make_control",
    "make_scheduler",
    "partition_size_sweep",
    "running_phase",
    "scheduler_running_results",
    "size_ratio_sweep",
    "sparkline",
    "testing_phase",
    "two_phase",
    "utilization_sweep",
]
