"""Ack policies: when is a write "acknowledged" in a replica group?

The paper's stability argument is about the latency a *client* observes
for an acknowledged write; replication moves the goalposts by letting the
operator choose what acknowledgement means:

``leader_only``
    Acked once durable on the leader. Fastest; a leader death can lose
    the suffix of acked writes that had not shipped yet.
``quorum``
    Acked once a majority of the replica group (leader included) holds
    the write. Survives any minority of failures without losing acked
    writes — the failover harness's zero-lost-acked audit assumes this.
``all``
    Acked once every follower holds the write. Strongest, and the ack
    latency is the *slowest* follower's shipping latency — one stalled
    replica stalls every client write (the replication analogue of the
    paper's stop interaction).
"""

from __future__ import annotations

from ..errors import ConfigurationError

ACK_POLICIES = ("leader_only", "quorum", "all")


def validate_ack_policy(policy: str) -> str:
    """Return ``policy`` or raise on an unknown name."""
    if policy not in ACK_POLICIES:
        raise ConfigurationError(
            f"unknown ack policy {policy!r}; choose from {ACK_POLICIES}"
        )
    return policy


def acks_required(policy: str, followers: int) -> int:
    """Follower acks needed before a write may be acknowledged.

    The leader's own durable apply always counts as one vote, so with
    ``followers`` followers the group size is ``followers + 1`` and a
    quorum needs ``(followers + 1) // 2 + 1`` votes total — i.e.
    ``(followers + 1) // 2`` of them from followers.
    """
    validate_ack_policy(policy)
    if followers < 0:
        raise ConfigurationError("follower count cannot be negative")
    if policy == "leader_only" or followers == 0:
        return 0
    if policy == "all":
        return followers
    return (followers + 1) // 2
