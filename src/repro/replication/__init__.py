"""repro.replication — per-shard WAL shipping, ack policies, failover.

Each cluster shard becomes a replica group: one leader
(:class:`ReplicatedKVServer` in leader role) streams its WAL to N
followers through a :class:`WalShipper`; each follower replays the
frames idempotently via a :class:`ReplicaApplier`. The ack policy
(:data:`ACK_POLICIES`) decides how many follower acks a client write
waits for, and the cluster router promotes the most-caught-up follower
when a leader's circuit breaker opens.

See ``docs/replication.md`` for the ack-policy semantics, the staleness
contract on follower reads, and the promotion/fencing rules.
"""

from .applier import ReplicaApplier
from .policy import ACK_POLICIES, acks_required, validate_ack_policy
from .server import (
    DEFAULT_REPAIR_INTERVAL,
    DEFAULT_REPLICATION_TIMEOUT,
    ReplicatedKVServer,
)
from .shipper import WalShipper

__all__ = [
    "ACK_POLICIES",
    "DEFAULT_REPAIR_INTERVAL",
    "DEFAULT_REPLICATION_TIMEOUT",
    "ReplicaApplier",
    "ReplicatedKVServer",
    "WalShipper",
    "acks_required",
    "validate_ack_policy",
]
