"""A :class:`KVServer` that is one member of a per-shard replica group.

One :class:`ReplicatedKVServer` wraps one local :class:`LSMStore` and
plays one of two roles:

* **leader** — accepts client writes, runs them through the normal
  admission pipeline, then (under ``quorum``/``all`` ack policies)
  holds the acknowledgement until the :class:`WalShipper` reports
  enough follower acks for the write's WAL position. The wait is the
  ``replication`` leg of the response breakdown.
* **follower** — rejects client writes with ``NOT_LEADER``, applies
  ``REPLICATE`` frames through a :class:`ReplicaApplier`, and serves
  reads; its ``SCAN`` responses carry the replica's applied cursor and
  a staleness lower bound for the router's ``read_from_replica`` mode.

``PROMOTE`` flips a follower to leader at a new epoch, re-attaching any
surviving peers with a reset-snapshot resync. A deposed leader that
receives a higher-epoch ``REPLICATE`` steps down to follower — together
with the applier's epoch check this is the fencing that keeps exactly
one writable head per shard.
"""

from __future__ import annotations

import asyncio

from ..engine.datastore import LSMStore
from ..errors import (
    ConfigurationError,
    ReplicaGapError,
    RequestFailedError,
    RetriesExhaustedError,
    StaleEpochError,
    WriteStalledError,
)
from ..obs import events as obs_events
from ..server import protocol
from ..server.admission import AdmissionController
from ..server.client import KVClient
from ..server.service import DEFAULT_WRITE_DEADLINE, KVServer
from .applier import ReplicaApplier
from .policy import acks_required, validate_ack_policy
from .shipper import WalShipper

#: Default bound on how long a leader waits for follower acks before
#: answering ``STALLED`` (the write is applied locally; a retry is safe).
DEFAULT_REPLICATION_TIMEOUT = 2.0

#: How often a leader checks its quarantine registry for runs it can
#: rebuild from a follower (0 disables the repair loop).
DEFAULT_REPAIR_INTERVAL = 0.0


def _default_follower_factory(host: str, port: int) -> KVClient:
    # Shipping has its own stall/retry loop, so the client itself fails
    # fast: one retry, short timeout.
    return KVClient(host, port, pool_size=1, timeout=2.0, max_retries=1)


class ReplicatedKVServer(KVServer):
    """One replica-group member serving the framed protocol."""

    def __init__(
        self,
        store: LSMStore,
        admission: AdmissionController | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        write_deadline: float = DEFAULT_WRITE_DEADLINE,
        metrics_port: int | None = None,
        role: str = "follower",
        epoch: int = 0,
        ack_policy: str = "leader_only",
        replication_timeout: float = DEFAULT_REPLICATION_TIMEOUT,
        follower_factory=None,
        repair_interval: float = DEFAULT_REPAIR_INTERVAL,
    ) -> None:
        if role not in ("leader", "follower"):
            raise ConfigurationError(f"unknown replica role {role!r}")
        if replication_timeout <= 0:
            raise ConfigurationError("replication_timeout must be positive")
        if repair_interval < 0:
            raise ConfigurationError("repair_interval cannot be negative")
        super().__init__(
            store, admission, host, port, write_deadline, metrics_port
        )
        self._role = role
        self._epoch = epoch
        self._ack_policy = validate_ack_policy(ack_policy)
        self._replication_timeout = replication_timeout
        self._follower_factory = (
            follower_factory or _default_follower_factory
        )
        self._applier = ReplicaApplier(store)
        self._applier.prime(epoch, *store.wal_position())
        self._shipper: WalShipper | None = None
        self._repair_interval = repair_interval
        self._repair_task: asyncio.Task | None = None

    # -- introspection ---------------------------------------------------

    @property
    def role(self) -> str:
        return self._role

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def applier(self) -> ReplicaApplier:
        return self._applier

    @property
    def shipper(self) -> WalShipper | None:
        return self._shipper

    # -- role changes ----------------------------------------------------

    async def become_leader(self, epoch: int, peer_clients=None) -> None:
        """Take leadership at ``epoch``, shipping to ``peer_clients``.

        Used both at cluster boot (the initial leader) and by the
        ``PROMOTE`` verb mid-failover. Peers start with an unknown
        cursor, so the shipper's first frame to each is a reset
        snapshot — correct regardless of how far behind they are.
        """
        if self._shipper is not None:
            await self._shipper.stop()
        self._epoch = epoch
        self._role = "leader"
        self._applier.prime(epoch, *self._store.wal_position())
        self._shipper = WalShipper(
            self._store,
            list(peer_clients or []),
            ack_policy=self._ack_policy,
            epoch=epoch,
        )
        await self._shipper.start()

    async def _step_down(self, epoch: int) -> None:
        """Demote to follower after seeing a newer epoch (fencing)."""
        if self._shipper is not None:
            await self._shipper.stop()
            self._shipper = None
        self._role = "follower"
        self._epoch = epoch

    async def start(self) -> tuple[str, int]:
        address = await super().start()
        if self._repair_interval > 0:
            self._repair_task = asyncio.get_running_loop().create_task(
                self._repair_loop(), name="run-repair"
            )
        return address

    async def aclose(self) -> None:
        if self._repair_task is not None:
            self._repair_task.cancel()
            await asyncio.gather(
                self._repair_task, return_exceptions=True
            )
            self._repair_task = None
        if self._shipper is not None:
            await self._shipper.stop()
            self._shipper = None
        await super().aclose()

    # -- the leader write path -------------------------------------------

    async def _admitted_write(self, nbytes: int, apply) -> dict:
        if self._role != "leader":
            return protocol.error_response(
                protocol.CODE_NOT_LEADER,
                f"replica is a follower at epoch {self._epoch}",
            )
        captured: list = []

        def apply_and_capture():
            timing = apply()
            captured.append(timing)
            return timing

        response = await super()._admitted_write(nbytes, apply_and_capture)
        if not response.get("ok") or not captured:
            return response
        breakdown = response.setdefault("breakdown", {})
        shipper = self._shipper
        timing = captured[-1]
        if (
            shipper is None
            or timing.wal_end < 0
            or acks_required(self._ack_policy, shipper.follower_count) == 0
        ):
            breakdown["replication"] = 0.0
            return response
        started = self._clock()
        committed = await shipper.wait_committed(
            timing.wal_generation, timing.wal_end, self._replication_timeout
        )
        waited = breakdown["replication"] = self._clock() - started
        if not committed:
            # The write is durable locally but under-replicated; the
            # client must not treat it as acknowledged. STALLED keeps it
            # retryable, and last-writer-wins makes the retry safe.
            failure = protocol.error_response(
                protocol.CODE_STALLED,
                f"replication quorum not reached within "
                f"{self._replication_timeout}s under "
                f"{self._ack_policy!r}",
                retry_after=self._replication_timeout / 2,
            )
            failure["breakdown"] = dict(
                breakdown, replication=waited
            )
            return failure
        return response

    # -- replication verbs -----------------------------------------------

    async def _op_replicate(self, message: dict) -> dict:
        payload = protocol.replicate_payload(message)
        if self._role == "leader":
            if payload["epoch"] > self._epoch:
                await self._step_down(payload["epoch"])
            elif not payload.get("probe"):
                return protocol.error_response(
                    protocol.CODE_NOT_LEADER,
                    f"replica is the leader at epoch {self._epoch}",
                )
        try:
            status = await asyncio.to_thread(
                self._applier.apply_frame, payload
            )
        except StaleEpochError as error:
            return protocol.error_response(
                protocol.CODE_STALE_EPOCH, str(error)
            )
        except ReplicaGapError as error:
            return protocol.error_response(
                protocol.CODE_REPLICA_GAP, str(error)
            )
        except WriteStalledError as error:
            return protocol.error_response(
                protocol.CODE_STALLED, str(error), retry_after=0.05
            )
        if status["epoch"] > self._epoch:
            self._epoch = status["epoch"]  # follower adopts shipped epoch
        return self._ack_response(status)

    async def _op_promote(self, message: dict) -> dict:
        epoch, peers = protocol.promote_payload(message)
        if epoch < self._epoch:
            return protocol.error_response(
                protocol.CODE_STALE_EPOCH,
                f"promotion epoch {epoch} < replica epoch {self._epoch}",
            )
        if self._role != "leader" or epoch > self._epoch:
            clients = [
                self._follower_factory(host, port) for host, port in peers
            ]
            await self.become_leader(epoch, clients)
            self.obs.tracer.emit(
                obs_events.REPLICA_PROMOTE, epoch=epoch, peers=len(peers)
            )
        return self._ack_response(self._applier.status())

    async def _op_fetch_range(self, message: dict) -> dict:
        """Serve a leader's repair fetch: our view of ``[lo, hi]``.

        Epoch-fenced like every replication verb. The applier status is
        read *before* the scan so the reported cursor is a lower bound
        on the state the scan observed — the caller compares that cursor
        against its own committed position, and "cursor fresh enough"
        then implies "snapshot fresh enough". A scan that hits our own
        quarantined run raises :class:`DataCorruptError`, which dispatch
        turns into ``DATA_CORRUPT`` — a damaged copy refuses to feed a
        repair.
        """
        epoch, lo, hi = protocol.fetch_range_payload(message)
        if epoch < self._epoch:
            return protocol.error_response(
                protocol.CODE_STALE_EPOCH,
                f"fetch epoch {epoch} < replica epoch {self._epoch}",
            )
        if epoch > self._epoch:
            if self._role == "leader":
                await self._step_down(epoch)
            else:
                self._epoch = epoch
        status = self._applier.status()
        hi_exclusive = hi + b"\x00"  # wire bounds are inclusive
        items = await asyncio.to_thread(
            lambda: list(self._store.scan(lo, hi_exclusive))
        )
        response = self._ack_response(status)
        response["items"] = [
            [protocol.b64encode(key), protocol.b64encode(value)]
            for key, value in items
        ]
        return response

    def _ack_response(self, status: dict) -> dict:
        return protocol.ok_response(
            epoch=status["epoch"],
            generation=status["generation"],
            applied=status["applied"],
            ship_tail=status["ship_tail"],
            role=self._role,
            quarantined=status.get("quarantined", 0),
        )

    # -- reads with a staleness contract ---------------------------------

    async def _op_scan(self, message: dict) -> dict:
        response = await super()._op_scan(message)
        if response.get("ok") and self._role == "follower":
            status = self._applier.status()
            response["replica_read"] = True
            response["replica_epoch"] = status["epoch"]
            response["applied_offset"] = status["applied"]
            response["staleness_bytes"] = max(
                0, status["ship_tail"] - status["applied"]
            )
        return response

    # -- replica-backed repair -------------------------------------------

    async def _repair_loop(self) -> None:
        while True:
            await asyncio.sleep(self._repair_interval)
            try:
                await self.repair_pass()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — repair must keep ticking
                continue

    async def repair_pass(self) -> int:
        """Try to rebuild every quarantined run from a follower.

        Returns how many runs were repaired. A pass is a no-op on a
        follower (its repair path is the shipper's reset snapshot) and
        on a leader with no followers attached.
        """
        if self._role != "leader" or self._shipper is None:
            return 0
        entries = await asyncio.to_thread(self._store.quarantined_entries)
        if not entries:
            return 0
        repaired = 0
        for entry in entries:
            if await self._repair_one(entry):
                repaired += 1
        return repaired

    async def _repair_one(self, entry) -> bool:
        """Rebuild one quarantined run from the freshest follower copy.

        Staleness safety: the leader captures its own WAL position *P*
        first, then only accepts a fetched snapshot whose ack cursor is
        ``>= P`` — the follower provably holds every write the leader
        has committed, so substituting its view of the key range cannot
        roll back acknowledged data. (A *higher* generation also
        qualifies: WAL truncation is gated on every follower acking the
        whole previous generation.)
        """
        shipper = self._shipper
        if shipper is None:
            return False
        position = await asyncio.to_thread(self._store.wal_position)
        cursors = shipper.acked_cursors()
        # Most-caught-up follower first; unknown cursors last.
        order = sorted(
            range(len(cursors)),
            key=lambda index: cursors[index] or (-1, -1),
            reverse=True,
        )
        for index in order:
            client = shipper.follower_client(index)
            try:
                fetched = await client.fetch_range(
                    self._epoch, entry.min_key, entry.max_key
                )
            except (
                RequestFailedError,
                RetriesExhaustedError,
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
            ):
                continue
            if (fetched["generation"], fetched["applied"]) < position:
                continue  # behind our committed state: unsafe to use
            repaired = await asyncio.to_thread(
                self._store.repair_run, entry.run_id, fetched["items"]
            )
            if repaired:
                return True
        return False

    # -- stats -----------------------------------------------------------

    async def _op_stats(self, message: dict) -> dict:
        response = await super()._op_stats(message)
        replication = {
            "role": self._role,
            "epoch": self._epoch,
            "ack_policy": self._ack_policy,
            "applier": self._applier.status(),
        }
        if self._shipper is not None:
            replication["shipping"] = self._shipper.status()
        response["replication"] = replication
        return response
