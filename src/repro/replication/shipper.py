"""Leader-side WAL shipping: stream committed frames to followers.

The shipper registers as the leader store's commit listener, so it
learns of every WAL append in commit order without buffering a byte:
ship tasks read frames straight back out of the WAL file
(:meth:`WriteAheadLog.stream_frames`), which works because the listener
also *gates WAL truncation* — the log can only restart once every
follower has acknowledged all of it, so a shipping cursor never dangles.

One asyncio task per follower ships frames strictly in order over the
framed protocol's ``REPLICATE`` verb and keeps three pieces of state:

* ``cursor`` — the next ``(generation, offset)`` to ship, or ``None``
  when the follower needs a full reset snapshot (bootstrap, or a gap
  that cannot be replayed);
* ``acked`` — the follower's last acknowledged cursor, which drives the
  ``replication_applied_offset`` / ``replication_lag_bytes`` gauges and
  the quorum accounting behind :meth:`wait_committed`;
* ``stalled`` — whether the follower is currently unreachable; entering
  a stall emits one ``ship_stall`` event and the task keeps retrying,
  so lag drains (and the gauge returns to zero) as soon as the follower
  answers again.

Fencing: every frame carries the leader's epoch. A follower that has
seen a newer epoch answers ``STALE_EPOCH``, and the deposed shipper
stops permanently rather than diverging the group.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

from ..engine.wal import WriteAheadLog
from ..errors import (
    DataCorruptError,
    RequestFailedError,
    RetriesExhaustedError,
)
from ..obs import events as obs_events
from ..server import protocol
from .policy import acks_required, validate_ack_policy

#: How many frames one WAL read may pull before yielding to the loop.
_MAX_FRAMES_PER_READ = 64


class WalShipper:
    """Ships a leader store's WAL to a set of follower clients."""

    def __init__(
        self,
        store,
        followers,
        ack_policy: str = "leader_only",
        epoch: int = 0,
        idle_interval: float = 0.05,
        stall_retry_interval: float = 0.05,
    ) -> None:
        self._store = store
        self._followers = list(followers)
        self._ack_policy = validate_ack_policy(ack_policy)
        self._epoch = epoch
        self._idle_interval = idle_interval
        self._stall_retry_interval = stall_retry_interval
        self._obs = store.obs
        self._lock = threading.Lock()
        self._tail: tuple[int, int] = (0, 0)
        self._cursors: list[tuple[int, int] | None] = [
            None for _ in self._followers
        ]
        self._acked: list[tuple[int, int] | None] = [
            None for _ in self._followers
        ]
        self._stalled = [False for _ in self._followers]
        self._fenced = False
        self._stopped = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._ack_cond: asyncio.Condition | None = None
        self._tasks: list[asyncio.Task] = []
        registry = self._obs.registry
        self._m_lag = [
            registry.gauge(
                "replication_lag_bytes",
                labels={"follower": str(index)},
                help="Leader-WAL bytes not yet acked by this follower.",
            )
            for index in range(len(self._followers))
        ]
        self._m_applied = [
            registry.gauge(
                "replication_applied_offset",
                labels={"follower": str(index)},
                help="This follower's acked byte offset in the leader WAL.",
            )
            for index in range(len(self._followers))
        ]
        self._m_frames = registry.counter(
            "replication_frames_shipped_total",
            help="WAL frames acknowledged by followers.",
        )
        self._m_resets = registry.counter(
            "replication_resets_total",
            help="Full snapshot resyncs shipped to followers.",
        )
        self._m_stalls = registry.counter(
            "replication_ship_stalls_total",
            help="Times a follower became unreachable mid-ship.",
        )

    # -- introspection ---------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def follower_count(self) -> int:
        return len(self._followers)

    @property
    def ack_policy(self) -> str:
        return self._ack_policy

    @property
    def fenced(self) -> bool:
        """True once a follower rejected our epoch — we are deposed."""
        return self._fenced

    def status(self) -> dict:
        """Shipping state for STATS: tail, per-follower cursors, lag."""
        with self._lock:
            tail = self._tail
            return {
                "epoch": self._epoch,
                "ack_policy": self._ack_policy,
                "tail_generation": tail[0],
                "tail_offset": tail[1],
                "fenced": self._fenced,
                "followers": [
                    {
                        "acked_generation": acked[0] if acked else None,
                        "acked_offset": acked[1] if acked else None,
                        "lag_bytes": self._lag_locked(index),
                        "stalled": self._stalled[index],
                    }
                    for index, acked in enumerate(self._acked)
                ],
            }

    def follower_client(self, index: int):
        """The pooled client for follower ``index`` (repair path)."""
        return self._followers[index]

    def acked_cursors(self) -> list:
        """Per-follower acked ``(generation, applied)`` cursors (or None).

        The repair ticker ranks followers by this to fetch a quarantined
        run's key range from the most caught-up copy first.
        """
        with self._lock:
            return list(self._acked)

    def _lag_locked(self, index: int) -> int:
        generation, tail_offset = self._tail
        acked = self._acked[index]
        if acked is None or acked[0] != generation:
            return tail_offset
        return max(0, tail_offset - acked[1])

    def _refresh_lag_locked(self, index: int) -> None:
        self._m_lag[index].set(float(self._lag_locked(index)))

    # -- the commit-listener face (called under the store lock) ----------

    def on_commit(self, generation, offset, length, batch) -> None:
        with self._lock:
            self._tail = (generation, offset + length)
            for index in range(len(self._followers)):
                self._refresh_lag_locked(index)
        self._wake_ship_tasks()

    def may_truncate(self, generation, size_bytes) -> bool:
        # Truncation voids byte offsets, so it must wait until every
        # cursor has drained — otherwise a lagging follower's position
        # would point into a log that no longer exists.
        with self._lock:
            return all(
                acked == (generation, size_bytes) for acked in self._acked
            )

    def on_truncate(self, generation) -> None:
        # Only reachable when every follower acked the whole previous
        # generation, so rebasing every cursor to the new log's start is
        # exact, not an approximation.
        with self._lock:
            self._tail = (generation, 0)
            for index in range(len(self._followers)):
                self._cursors[index] = (generation, 0)
                self._acked[index] = (generation, 0)
                self._refresh_lag_locked(index)

    def _wake_ship_tasks(self) -> None:
        loop, wake = self._loop, self._wake
        if loop is None or wake is None:
            return
        with contextlib.suppress(RuntimeError):  # loop already closed
            loop.call_soon_threadsafe(wake.set)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Attach to the store and begin shipping."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._ack_cond = asyncio.Condition()
        with self._lock:
            self._tail = self._store.wal_position()
        self._store.set_commit_listener(self)
        self._tasks = [
            asyncio.create_task(
                self._ship_loop(index), name=f"wal-ship-{index}"
            )
            for index in range(len(self._followers))
        ]

    async def stop(self) -> None:
        """Detach from the store, stop ship tasks, close clients."""
        self._stopped = True
        self._store.set_commit_listener(None)
        if self._wake is not None:
            self._wake.set()
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        for client in self._followers:
            with contextlib.suppress(Exception):
                await client.aclose()

    # -- quorum accounting -----------------------------------------------

    def _ack_count(self, generation: int, end: int) -> int:
        with self._lock:
            count = 0
            for acked in self._acked:
                if acked is None:
                    continue
                # A newer generation implies the whole older one was
                # acked (truncation is gated on exactly that), and a
                # reset snapshot carries the leader's current state.
                if acked[0] > generation or (
                    acked[0] == generation and acked[1] >= end
                ):
                    count += 1
            return count

    async def wait_committed(
        self, generation: int, end: int, timeout: float
    ) -> bool:
        """Wait until the ack policy is satisfied for a write ending at
        ``(generation, end)`` in the leader WAL; False on timeout."""
        required = acks_required(self._ack_policy, len(self._followers))
        if required == 0:
            return True
        assert self._ack_cond is not None, "shipper not started"
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        async with self._ack_cond:
            while self._ack_count(generation, end) < required:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    return False
                try:
                    await asyncio.wait_for(
                        self._ack_cond.wait(), remaining
                    )
                except asyncio.TimeoutError:
                    return False
        return True

    async def _record_ack(self, index: int, ack: dict) -> None:
        cursor = (ack["generation"], ack["applied"])
        with self._lock:
            if ack.get("quarantined", 0) > 0:
                # The follower is advertising damaged local runs. Its
                # cursor is still honest about the WAL prefix it applied,
                # but its *materialized state* is not that prefix any
                # more — so force the next ship to be a full reset
                # snapshot, which replaces the damage wholesale.
                self._cursors[index] = None
            else:
                self._cursors[index] = cursor
            self._acked[index] = cursor
            self._m_applied[index].set(float(ack["applied"]))
            self._refresh_lag_locked(index)
        assert self._ack_cond is not None
        async with self._ack_cond:
            self._ack_cond.notify_all()

    # -- shipping --------------------------------------------------------

    def _read_frames(self, offset: int):
        frames = []
        for frame in WriteAheadLog.stream_frames(
            self._store.wal_path, offset
        ):
            frames.append(frame)
            if len(frames) >= _MAX_FRAMES_PER_READ:
                break
        return frames

    async def _ship_loop(self, index: int) -> None:
        assert self._wake is not None
        while not self._stopped and not self._fenced:
            self._wake.clear()
            try:
                advanced = await self._ship_once(index)
            except asyncio.CancelledError:
                raise
            except RequestFailedError as error:
                if error.code == protocol.CODE_STALE_EPOCH:
                    self._fenced = True
                    return
                # Anything else (INTERNAL, CLOSED, BAD_REQUEST) is a
                # follower-side failure; treat it like unreachability.
                await self._note_stall(index, error)
                continue
            except (
                RetriesExhaustedError,
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
            ) as error:
                await self._note_stall(index, error)
                continue
            except DataCorruptError as error:
                # The *leader's* snapshot scan hit its own quarantined
                # run (only reachable while shipping a reset). Back off
                # like a stall: the repair ticker will rebuild the run
                # from a healthy follower, after which the reset scan
                # succeeds again.
                await self._note_stall(index, error)
                continue
            self._clear_stall(index)
            if not advanced:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._wake.wait(), self._idle_interval
                    )

    async def _note_stall(self, index: int, error: Exception) -> None:
        entered = False
        with self._lock:
            if not self._stalled[index]:
                self._stalled[index] = True
                entered = True
        if entered:
            self._m_stalls.inc()
            self._obs.tracer.emit(
                obs_events.SHIP_STALL,
                follower=index,
                error=type(error).__name__,
            )
        await asyncio.sleep(self._stall_retry_interval)

    def _clear_stall(self, index: int) -> None:
        with self._lock:
            self._stalled[index] = False

    async def _ship_once(self, index: int) -> bool:
        """Ship one snapshot or one batch of frames; False when idle."""
        client = self._followers[index]
        with self._lock:
            cursor = self._cursors[index]
            tail = self._tail
            epoch = self._epoch
        if cursor is None:
            return await self._ship_reset(index, client, epoch)
        generation, offset = cursor
        if generation != tail[0]:
            # The WAL restarted without this cursor draining — only
            # possible after a promotion re-based the group — so the
            # follower needs a snapshot, not frames.
            with self._lock:
                self._cursors[index] = None
            return True
        if offset >= tail[1]:
            return False  # fully shipped: idle until the next commit
        frames = await asyncio.to_thread(self._read_frames, offset)
        if not frames:
            return False  # appended bytes not yet visible as a frame
        for start, end, ops in frames:
            if self._stopped or self._fenced:
                return True
            message = protocol.replicate_request(
                epoch, generation, start, end, ops
            )
            try:
                ack = await client.replicate(message)
            except RequestFailedError as error:
                if error.code == protocol.CODE_REPLICA_GAP:
                    await self._rewind(index, client, epoch)
                    return True
                raise
            self._m_frames.inc()
            await self._record_ack(index, ack)
        return True

    async def _ship_reset(self, index: int, client, epoch: int) -> bool:
        items, generation, offset = await asyncio.to_thread(
            self._store.replication_snapshot
        )
        message = protocol.replicate_request(
            epoch, generation, 0, offset, list(items), reset=True
        )
        ack = await client.replicate(message)
        self._m_resets.inc()
        await self._record_ack(index, ack)
        return True

    async def _rewind(self, index: int, client, epoch: int) -> None:
        """Resynchronise the cursor after a gap rejection."""
        status = await client.replica_status(epoch)
        with self._lock:
            if status["generation"] == self._tail[0]:
                self._cursors[index] = (
                    status["generation"], status["applied"]
                )
            else:
                self._cursors[index] = None
