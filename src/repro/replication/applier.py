"""Follower-side apply: replay shipped WAL frames into a local store.

The applier is the correctness core of log shipping. The shipper may
re-send frames after a reconnect, restart from an arbitrary cursor, or
fall back to a full snapshot; the applier's contract is that whatever
arrives, the follower's ``scan()`` output stays a prefix-consistent copy
of the leader's:

* **duplicates** (frame ends at or before the applied cursor) are
  acknowledged without re-applying — last-writer-wins makes replay
  idempotent only if ordering is preserved, so skipping is mandatory,
  not an optimisation;
* **gaps** (frame starts past the applied cursor) are rejected with
  :class:`~repro.errors.ReplicaGapError` carrying the expected cursor,
  never papered over;
* **stale epochs** are rejected with
  :class:`~repro.errors.StaleEpochError` — the fencing that stops a
  deposed leader from diverging a follower after a promotion;
* **reset frames** replace the entire local state with a leader
  snapshot and re-base the cursor, the recovery path for generation
  mismatches (the leader truncated its WAL past the follower's cursor).

All methods are thread-safe and blocking (they call into the LSM
store); the serving layer runs them via ``asyncio.to_thread``.
"""

from __future__ import annotations

import threading

from ..errors import ReplicaGapError, StaleEpochError


class ReplicaApplier:
    """Applies shipped frames to a follower's :class:`LSMStore`."""

    def __init__(self, store) -> None:
        self._store = store
        self._lock = threading.Lock()
        self._epoch = 0
        self._generation = 0
        self._applied = 0
        #: Highest leader-WAL end offset this follower has *seen* (frame
        #: metadata, even if the frame was a duplicate). ``ship_tail -
        #: applied`` is the follower's own lower bound on its staleness.
        self._ship_tail = 0
        self._frames_applied = 0
        self._frames_skipped = 0
        self._resets = 0

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """Cursor and counters, as the REPLICATE ack reports them."""
        quarantined = len(self._store.quarantined_entries())
        with self._lock:
            return {
                "epoch": self._epoch,
                "generation": self._generation,
                "applied": self._applied,
                "ship_tail": self._ship_tail,
                "frames_applied": self._frames_applied,
                "frames_skipped": self._frames_skipped,
                "resets": self._resets,
                # A follower advertising quarantined runs is telling the
                # leader its local state is damaged: the shipper answers
                # by sending a full reset snapshot, which heals it.
                "quarantined": quarantined,
            }

    @property
    def store(self):
        """The follower's local store (promotion hands it to a leader)."""
        return self._store

    def prime(self, epoch: int, generation: int, applied: int) -> None:
        """Set the cursor directly (bootstrap from an out-of-band copy)."""
        with self._lock:
            self._epoch = epoch
            self._generation = generation
            self._applied = applied
            self._ship_tail = max(self._ship_tail, applied)

    # -- the apply path --------------------------------------------------

    def apply_frame(self, frame: dict) -> dict:
        """Apply one decoded REPLICATE payload; returns :meth:`status`.

        ``frame`` is the dict :func:`repro.server.protocol.replicate_payload`
        produces. Probes only read; everything else walks the duplicate/
        gap/epoch/reset decision tree documented in the module docstring.
        """
        with self._lock:
            epoch = frame["epoch"]
            if frame.get("probe"):
                if epoch > self._epoch:
                    self._epoch = epoch
            elif epoch < self._epoch:
                raise StaleEpochError(
                    f"frame epoch {epoch} < replica epoch {self._epoch}"
                )
            else:
                self._epoch = epoch
                self._apply_locked(frame)
        return self.status()

    def _apply_locked(self, frame: dict) -> None:
        generation = frame["generation"]
        start, end = frame["start"], frame["end"]
        if frame["reset"]:
            self._reset_locked(frame["ops"], generation, end)
            return
        if generation != self._generation:
            # Offsets from another generation are incomparable; only a
            # fresh generation starting at byte 0 (the leader truncated
            # after this follower acked everything) lines up.
            if generation > self._generation and start == 0:
                self._generation = generation
                self._applied = 0
                self._ship_tail = 0
            elif generation < self._generation:
                self._frames_skipped += 1  # stale duplicate, pre-rebase
                return
            else:
                raise ReplicaGapError(
                    f"frame generation {generation} does not continue "
                    f"cursor ({self._generation}, {self._applied})",
                    expected=(self._generation, self._applied),
                )
        self._ship_tail = max(self._ship_tail, end)
        if end <= self._applied:
            self._frames_skipped += 1  # duplicate after a reconnect
            return
        if start != self._applied:
            raise ReplicaGapError(
                f"frame starts at {start}, expected {self._applied}",
                expected=(self._generation, self._applied),
            )
        if frame["ops"]:
            self._store.write_batch(frame["ops"])
        self._applied = end
        self._frames_applied += 1

    def _reset_locked(self, ops, generation: int, end: int) -> None:
        """Replace the local state with a leader snapshot atomically.

        Delegated to :meth:`LSMStore.apply_reset` rather than a local
        scan-and-diff: the store computes the deletions from its
        *readable* state (a plain ``scan`` would fail fast on a
        quarantined run) and drops every quarantined run afterwards —
        sound because the snapshot supersedes the whole store, so a
        reset is also the follower's corruption-repair path.
        """
        self._store.apply_reset(list(ops))
        self._generation = generation
        self._applied = end
        self._ship_tail = end
        self._resets += 1
