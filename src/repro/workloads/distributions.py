"""Key-choice distributions for update workloads.

The paper evaluates two update workloads: keys drawn uniformly over the
loaded keyspace, and keys drawn from a (scrambled) Zipf distribution as in
YCSB. These classes produce concrete keys for the real storage engine and
expose the rank probabilities needed by the analytic keyspace model used
by the simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError


class KeyDistribution(ABC):
    """A distribution over the integer keyspace ``[0, keyspace)``."""

    def __init__(self, keyspace: int) -> None:
        if keyspace <= 0:
            raise ConfigurationError("keyspace size must be positive")
        self._keyspace = keyspace

    @property
    def keyspace(self) -> int:
        """Number of distinct keys."""
        return self._keyspace

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` keys as an int64 array."""

    @abstractmethod
    def rank_probabilities(self, ranks: np.ndarray) -> np.ndarray:
        """Probability that one draw selects the key of each given rank.

        Ranks are 0-based and ordered from most to least popular; for the
        uniform distribution every rank has the same probability.
        """


class UniformKeys(KeyDistribution):
    """Every key in the keyspace is equally likely."""

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.integers(0, self._keyspace, size=count, dtype=np.int64)

    def rank_probabilities(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks)
        return np.full(ranks.shape, 1.0 / self._keyspace)

    def __repr__(self) -> str:
        return f"UniformKeys(keyspace={self._keyspace})"


class ZipfianKeys(KeyDistribution):
    """Scrambled Zipfian distribution as used by YCSB.

    Rank ``r`` (0-based) is chosen with probability proportional to
    ``1 / (r + 1) ** theta``. YCSB's default ``theta`` is 0.99. Ranks are
    scrambled onto the keyspace with a fixed pseudo-random permutation
    (an affine hash) so that popular keys are spread across the key range
    rather than clustered — this matters for partitioned LSM-trees, where
    clustering would skew per-file overlap.
    """

    #: Multiplier of the splitmix64-style scrambling hash.
    _SCRAMBLE_MULTIPLIER = 0x9E3779B97F4A7C15

    def __init__(self, keyspace: int, theta: float = 0.99) -> None:
        super().__init__(keyspace)
        if not 0.0 < theta < 2.0:
            raise ConfigurationError(f"zipf theta={theta} out of sensible range")
        self._theta = theta
        # Normalization constant computed once: zeta_n = sum r^-theta.
        # Exact for small keyspaces; Euler-Maclaurin style integral
        # approximation for large ones keeps construction O(1).
        if keyspace <= 2_000_000:
            ranks = np.arange(1, keyspace + 1, dtype=np.float64)
            self._zeta = float(np.sum(ranks**-theta))
        else:
            head = np.arange(1, 1_000_001, dtype=np.float64)
            head_sum = float(np.sum(head**-theta))
            # Integral of x^-theta from 1e6 to keyspace.
            n0, n1 = 1_000_000.5, keyspace + 0.5
            tail = (n1 ** (1 - theta) - n0 ** (1 - theta)) / (1 - theta)
            self._zeta = head_sum + tail

    @property
    def theta(self) -> float:
        """Skew parameter; larger is more skewed."""
        return self._theta

    def _scramble(self, ranks: np.ndarray) -> np.ndarray:
        """Map ranks onto keys with a fixed mixing permutation."""
        mixed = (ranks.astype(np.uint64) * np.uint64(self._SCRAMBLE_MULTIPLIER)) >> np.uint64(1)
        return (mixed % np.uint64(self._keyspace)).astype(np.int64)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # Inverse-CDF sampling on the continuous approximation of the
        # Zipf CDF, which is accurate for keyspaces of 10^5 and larger
        # and costs O(1) per draw (YCSB uses the same approach).
        u = rng.random(count)
        one_minus = 1.0 - self._theta
        cumulative = u * self._zeta * one_minus
        ranks = np.power(cumulative + 0.5**one_minus, 1.0 / one_minus)
        ranks = np.clip(ranks.astype(np.int64), 0, self._keyspace - 1)
        return self._scramble(ranks)

    def rank_probabilities(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.float64)
        return (ranks + 1.0) ** (-self._theta) / self._zeta

    def __repr__(self) -> str:
        return f"ZipfianKeys(keyspace={self._keyspace}, theta={self._theta})"


class LatestKeys(KeyDistribution):
    """YCSB's "latest" distribution: recent inserts are most popular.

    Included for completeness of the YCSB-style generator; the paper's
    experiments use uniform and Zipf. The popularity of the key inserted
    ``d`` writes ago follows the same Zipf law over recency ranks.
    """

    def __init__(self, keyspace: int, theta: float = 0.99) -> None:
        super().__init__(keyspace)
        self._zipf = ZipfianKeys(keyspace, theta)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        recency = self._zipf.sample(rng, count) % self._keyspace
        return (self._keyspace - 1 - recency).astype(np.int64)

    def rank_probabilities(self, ranks: np.ndarray) -> np.ndarray:
        return self._zipf.rank_probabilities(np.asarray(ranks))

    def __repr__(self) -> str:
        return f"LatestKeys(keyspace={self._keyspace})"


class HotspotKeys(KeyDistribution):
    """YCSB's hotspot distribution: a hot key set absorbs most accesses.

    A fraction ``hot_fraction`` of the keyspace (spread across the key
    range, like the scrambled Zipfian) receives ``hot_probability`` of
    the draws uniformly; the remainder of the draws go uniformly to the
    cold keys. Defaults match YCSB's hotspot defaults (20% of keys take
    80% of accesses).
    """

    def __init__(
        self,
        keyspace: int,
        hot_fraction: float = 0.2,
        hot_probability: float = 0.8,
    ) -> None:
        super().__init__(keyspace)
        if not 0.0 < hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1)")
        if not 0.0 < hot_probability < 1.0:
            raise ConfigurationError("hot_probability must be in (0, 1)")
        self._hot_count = max(1, int(keyspace * hot_fraction))
        self._hot_probability = hot_probability

    @property
    def hot_count(self) -> int:
        """Number of keys in the hot set."""
        return self._hot_count

    def _spread(self, ranks: np.ndarray) -> np.ndarray:
        """Map hot ranks onto keys spread across the key range."""
        stride = max(self._keyspace // self._hot_count, 1)
        return ((ranks.astype(np.int64) * stride) % self._keyspace).astype(
            np.int64
        )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        hot = rng.random(count) < self._hot_probability
        hot_ranks = rng.integers(0, self._hot_count, size=count, dtype=np.int64)
        cold = rng.integers(0, self._keyspace, size=count, dtype=np.int64)
        return np.where(hot, self._spread(hot_ranks), cold)

    def rank_probabilities(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks)
        hot_mass = self._hot_probability / self._hot_count
        # cold draws may also land on hot keys (uniform over everything)
        cold_mass = (1.0 - self._hot_probability) / self._keyspace
        return np.where(ranks < self._hot_count, hot_mass + cold_mass, cold_mass)

    def __repr__(self) -> str:
        return (
            f"HotspotKeys(keyspace={self._keyspace}, "
            f"hot={self._hot_count}, p={self._hot_probability})"
        )
