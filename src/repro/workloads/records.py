"""YCSB-style record generation for the real storage engine.

The simulator never materializes records, but the storage engine examples
and integration tests ingest real key/value pairs. This module generates
them the way YCSB does: fixed-width zero-padded keys with a common prefix,
and records composed of a configurable number of fields with deterministic
pseudo-random payloads. Secondary-index experiments attach extra integer
fields drawn uniformly over the keyspace, matching Section 7's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .distributions import KeyDistribution


def encode_key(key: int, width: int = 12, prefix: str = "user") -> bytes:
    """Encode an integer key as a YCSB-style fixed-width byte string.

    Fixed-width zero padding makes the lexicographic byte order equal to
    the numeric order, which the sorted-run format relies on.
    """
    if key < 0:
        raise ConfigurationError("keys must be non-negative integers")
    text = f"{prefix}{key:0{width}d}"
    return text.encode("ascii")


def decode_key(encoded: bytes, prefix: str = "user") -> int:
    """Invert :func:`encode_key`."""
    text = encoded.decode("ascii")
    if not text.startswith(prefix):
        raise ConfigurationError(f"key {encoded!r} lacks prefix {prefix!r}")
    return int(text[len(prefix):])


@dataclass(frozen=True)
class GeneratedRecord:
    """One generated record: primary key bytes, value bytes, and the
    integer secondary-field values used to maintain secondary indexes."""

    key: bytes
    value: bytes
    secondary: tuple[int, ...] = field(default=())


class RecordGenerator:
    """Generates update streams of YCSB-style records.

    Parameters
    ----------
    distribution:
        Key-choice distribution (uniform or Zipf in the paper).
    value_size:
        Payload bytes per record (paper: 1 KB records).
    secondary_fields:
        Number of secondary-index fields; each is drawn uniformly over the
        keyspace per Section 7 ("each secondary field value randomly
        following a uniform distribution based on the total number of base
        records").
    seed:
        Seed for the internal generator; identical seeds give identical
        streams.
    """

    def __init__(
        self,
        distribution: KeyDistribution,
        value_size: int = 1024,
        secondary_fields: int = 0,
        seed: int = 0,
    ) -> None:
        if value_size <= 0:
            raise ConfigurationError("value_size must be positive")
        if secondary_fields < 0:
            raise ConfigurationError("secondary_fields must be >= 0")
        self._distribution = distribution
        self._value_size = value_size
        self._secondary_fields = secondary_fields
        self._rng = np.random.default_rng(seed)

    @property
    def value_size(self) -> int:
        """Bytes of payload per record."""
        return self._value_size

    def _value_for(self, key: int, version: int) -> bytes:
        """Deterministic payload so tests can verify read-your-writes."""
        stamp = f"v{version}:k{key}:".encode("ascii")
        filler = b"x" * max(0, self._value_size - len(stamp))
        return (stamp + filler)[: self._value_size]

    def batch(self, count: int) -> list[GeneratedRecord]:
        """Generate ``count`` update records."""
        keys = self._distribution.sample(self._rng, count)
        if self._secondary_fields:
            fields = self._rng.integers(
                0,
                self._distribution.keyspace,
                size=(count, self._secondary_fields),
                dtype=np.int64,
            )
        records = []
        for row, key in enumerate(keys):
            secondary = (
                tuple(int(v) for v in fields[row]) if self._secondary_fields else ()
            )
            records.append(
                GeneratedRecord(
                    key=encode_key(int(key)),
                    value=self._value_for(int(key), row),
                    secondary=secondary,
                )
            )
        return records

    def load_sequence(self, count: int) -> list[GeneratedRecord]:
        """Initial-load records: each key 0..count-1 exactly once, in a
        random order (the paper loads 100M records in random key order)."""
        order = self._rng.permutation(count)
        records = []
        for key in order:
            secondary = tuple(
                int(v)
                for v in self._rng.integers(0, count, size=self._secondary_fields)
            )
            records.append(
                GeneratedRecord(
                    key=encode_key(int(key)),
                    value=self._value_for(int(key), 0),
                    secondary=secondary,
                )
            )
        return records
