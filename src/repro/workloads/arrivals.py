"""Arrival processes: how quickly clients submit writes.

The paper distinguishes the *closed* system model (the testing phase: a
fixed set of clients writes as fast as the LSM-tree will accept) from the
*open* system model (the running phase: writes arrive at an externally
fixed rate and queue when the tree cannot keep up). An arrival process
here is a piecewise-constant rate function over virtual time; the closed
model is represented by an infinite rate, which makes the simulator's
admission logic uniform across both phases.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigurationError


class ArrivalProcess(ABC):
    """A piecewise-constant write arrival rate over virtual time."""

    @abstractmethod
    def rate_at(self, time: float) -> float:
        """Arrival rate (entries/second) in effect at ``time``.

        ``math.inf`` denotes the closed system model: clients submit the
        next write the moment the previous one is accepted.
        """

    @abstractmethod
    def next_change(self, time: float) -> float:
        """The next instant strictly after ``time`` at which the rate
        changes, or ``math.inf`` if the rate is constant forever after."""


class ClosedArrivals(ArrivalProcess):
    """The closed system model: write as much data as possible."""

    def rate_at(self, time: float) -> float:
        return math.inf

    def next_change(self, time: float) -> float:
        return math.inf

    def __repr__(self) -> str:
        return "ClosedArrivals()"


class ConstantArrivals(ArrivalProcess):
    """Open system with a constant arrival rate (the running phase)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0 or not math.isfinite(rate):
            raise ConfigurationError("constant arrival rate must be finite positive")
        self._rate = rate

    @property
    def rate(self) -> float:
        """The constant arrival rate in entries/second."""
        return self._rate

    def rate_at(self, time: float) -> float:
        return self._rate

    def next_change(self, time: float) -> float:
        return math.inf

    def __repr__(self) -> str:
        return f"ConstantArrivals(rate={self._rate})"


@dataclass(frozen=True)
class BurstPhase:
    """One leg of a repeating burst schedule."""

    duration: float
    rate: float


class BurstyArrivals(ArrivalProcess):
    """Open system alternating between phases of different rates.

    The paper's burst experiment (Fig. 13) alternates 25 minutes at
    2000 records/s with 5 minutes at 8000 records/s; that is
    ``BurstyArrivals([BurstPhase(1500, 2000), BurstPhase(300, 8000)])``.
    The schedule repeats indefinitely.
    """

    def __init__(self, phases: list[BurstPhase]) -> None:
        if not phases:
            raise ConfigurationError("burst schedule needs at least one phase")
        for phase in phases:
            if phase.duration <= 0:
                raise ConfigurationError("burst phase duration must be positive")
            if phase.rate < 0 or not math.isfinite(phase.rate):
                raise ConfigurationError("burst phase rate must be finite >= 0")
        self._phases = list(phases)
        self._cycle = sum(phase.duration for phase in phases)

    @property
    def cycle_length(self) -> float:
        """Length of one full repetition of the schedule, in seconds."""
        return self._cycle

    def mean_rate(self) -> float:
        """Long-run average arrival rate over one cycle."""
        weighted = sum(p.duration * p.rate for p in self._phases)
        return weighted / self._cycle

    def _locate(self, time: float) -> tuple[int, float]:
        """Return (phase index, time remaining in that phase)."""
        offset = time % self._cycle
        for index, phase in enumerate(self._phases):
            if offset < phase.duration:
                return index, phase.duration - offset
            offset -= phase.duration
        # Floating-point edge: offset == cycle length maps to phase 0.
        return 0, self._phases[0].duration

    def rate_at(self, time: float) -> float:
        index, _ = self._locate(time)
        return self._phases[index].rate

    def next_change(self, time: float) -> float:
        _, remaining = self._locate(time)
        return time + remaining

    def __repr__(self) -> str:
        legs = ", ".join(f"{p.rate}/s x {p.duration}s" for p in self._phases)
        return f"BurstyArrivals([{legs}])"
