"""YCSB core workload mixes and operation traces for the storage engine.

The paper builds custom workloads on top of YCSB; this module provides
the standard YCSB core mixes (A-F) for exercising the real engine the way
key-value-store evaluations conventionally do, plus a small deterministic
operation-trace facility: generate a trace once, save it as JSON lines,
and replay it against any store — useful for comparing engine
configurations on identical operation sequences.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from .distributions import KeyDistribution, LatestKeys, UniformKeys, ZipfianKeys
from .records import encode_key

#: The YCSB core packages: (read, update, insert, scan, read-modify-write)
#: fractions and the key distribution each package specifies.
YCSB_MIXES: dict[str, dict[str, float | str]] = {
    "A": {"read": 0.5, "update": 0.5, "distribution": "zipfian"},
    "B": {"read": 0.95, "update": 0.05, "distribution": "zipfian"},
    "C": {"read": 1.0, "distribution": "zipfian"},
    "D": {"read": 0.95, "insert": 0.05, "distribution": "latest"},
    "E": {"scan": 0.95, "insert": 0.05, "distribution": "zipfian"},
    "F": {"read": 0.5, "rmw": 0.5, "distribution": "zipfian"},
}

#: Operations a trace may contain.
OPERATIONS = ("read", "update", "insert", "scan", "rmw")


@dataclass(frozen=True)
class TraceOp:
    """One operation of a workload trace."""

    op: str
    key: bytes
    value_size: int = 0
    scan_length: int = 0

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(
            {
                "op": self.op,
                "key": self.key.decode("ascii"),
                "value_size": self.value_size,
                "scan_length": self.scan_length,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceOp":
        """Parse one JSON line."""
        raw = json.loads(line)
        if raw["op"] not in OPERATIONS:
            raise ConfigurationError(f"unknown trace op {raw['op']!r}")
        return cls(
            op=raw["op"],
            key=raw["key"].encode("ascii"),
            value_size=int(raw["value_size"]),
            scan_length=int(raw["scan_length"]),
        )


class YCSBWorkload:
    """Generates operation streams for one YCSB core mix.

    Parameters
    ----------
    mix:
        "A".."F" (see :data:`YCSB_MIXES`).
    keyspace:
        Records loaded before the run; inserts extend it.
    value_size:
        Bytes per record value.
    scan_length:
        Records per scan for workload E.
    seed:
        Generator seed; identical seeds give identical streams.
    """

    def __init__(
        self,
        mix: str,
        keyspace: int = 10_000,
        value_size: int = 256,
        scan_length: int = 50,
        seed: int = 0,
    ) -> None:
        mix = mix.upper()
        if mix not in YCSB_MIXES:
            raise ConfigurationError(f"unknown YCSB mix {mix!r}")
        if keyspace < 1:
            raise ConfigurationError("keyspace must be positive")
        self._mix = mix
        self._profile = YCSB_MIXES[mix]
        self._keyspace = keyspace
        self._inserted = keyspace
        self._value_size = value_size
        self._scan_length = scan_length
        self._rng = np.random.default_rng(seed)
        self._distribution = self._make_distribution()

    @property
    def mix(self) -> str:
        """The mix letter."""
        return self._mix

    def _make_distribution(self) -> KeyDistribution:
        name = self._profile["distribution"]
        if name == "zipfian":
            return ZipfianKeys(self._inserted)
        if name == "latest":
            return LatestKeys(self._inserted)
        return UniformKeys(self._inserted)

    def _choose_ops(self, count: int) -> list[str]:
        names = [op for op in OPERATIONS if self._profile.get(op, 0.0)]
        weights = np.asarray([self._profile[op] for op in names], dtype=float)
        weights /= weights.sum()
        picks = self._rng.choice(len(names), size=count, p=weights)
        return [names[i] for i in picks]

    def operations(self, count: int) -> Iterator[TraceOp]:
        """Yield ``count`` operations of this mix."""
        for op in self._choose_ops(count):
            if op == "insert":
                key = encode_key(self._inserted)
                self._inserted += 1
                self._distribution = self._make_distribution()
                yield TraceOp(op, key, value_size=self._value_size)
            else:
                key_id = int(self._distribution.sample(self._rng, 1)[0])
                key = encode_key(key_id)
                if op == "scan":
                    yield TraceOp(op, key, scan_length=self._scan_length)
                elif op == "read":
                    yield TraceOp(op, key)
                else:  # update / rmw write a fresh value
                    yield TraceOp(op, key, value_size=self._value_size)

    def load_operations(self) -> Iterator[TraceOp]:
        """The initial load: insert every key once."""
        for key_id in range(self._keyspace):
            yield TraceOp("insert", encode_key(key_id),
                          value_size=self._value_size)


def save_trace(path: str | Path, operations: Iterator[TraceOp]) -> int:
    """Write a trace as JSON lines; returns the operation count."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as sink:
        for op in operations:
            sink.write(op.to_json() + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> Iterator[TraceOp]:
    """Stream a trace back from disk."""
    with Path(path).open("r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                yield TraceOp.from_json(line)


def replay_trace(store, operations: Iterator[TraceOp]) -> dict[str, int]:
    """Apply a trace to an :class:`~repro.engine.datastore.LSMStore`-like
    object (``put``/``get``/``scan``); returns per-op counts.

    Read-modify-write reads the record and writes a derived value;
    missing reads are counted separately so configuration comparisons can
    check they replayed identically.
    """
    counts = {op: 0 for op in OPERATIONS}
    counts["read_miss"] = 0
    for trace_op in operations:
        counts[trace_op.op] += 1
        if trace_op.op == "read":
            if store.get(trace_op.key) is None:
                counts["read_miss"] += 1
        elif trace_op.op in ("update", "insert"):
            store.put(trace_op.key, b"v" * max(trace_op.value_size, 1))
        elif trace_op.op == "scan":
            for _ in store.scan(trace_op.key, None, limit=trace_op.scan_length):
                pass
        elif trace_op.op == "rmw":
            current = store.get(trace_op.key) or b""
            store.put(
                trace_op.key,
                (current + b"+")[: max(trace_op.value_size, 1)],
            )
    return counts
