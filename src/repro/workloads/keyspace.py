"""Analytic keyspace model: expected unique keys under merges.

The fluid simulator does not materialize individual keys. What it needs
from the workload is *reclamation*: when components are merged, entries
that update the same key collapse into one, so the output component is
smaller than the sum of its inputs. How much smaller depends on the key
distribution — under Zipf updates, hot keys are updated over and over and
merges reclaim a lot; under uniform updates over a large keyspace,
reclamation at small levels is negligible and grows toward the largest
level.

The model buckets the popularity ranks of the keyspace into geometric bins
(fine bins for the hottest ranks). A component is summarized by its
*profile*: the expected number of distinct keys it holds in each bucket.

* A memtable flushed after ``e`` raw writes has, in bucket ``g`` with
  ``n_g`` keys of per-draw probability ``p_g``, an expected
  ``n_g * (1 - (1 - p_g) ** e)`` distinct keys.
* Merging components with per-bucket unique counts ``u_{i,g}`` yields
  ``n_g * (1 - prod_i (1 - u_{i,g} / n_g))`` distinct keys — exact when
  the key sets are independent draws, which is the case for uniform keys
  and an accurate approximation for scrambled Zipf.

These are closed-form expectations, so the simulator's component sizes are
deterministic — a deliberate choice that makes every benchmark reproducible
bit-for-bit and isolates the *avoidable* variance the paper studies (the
scheduler's) from workload noise.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .distributions import KeyDistribution, UniformKeys

#: A profile is a float array of expected distinct keys per rank bucket.
Profile = np.ndarray


class KeyspaceModel:
    """Bucketed analytic model of a key distribution's update reclamation."""

    def __init__(
        self,
        distribution: KeyDistribution,
        buckets: int = 64,
    ) -> None:
        if buckets <= 0:
            raise ConfigurationError("bucket count must be positive")
        keyspace = distribution.keyspace
        if isinstance(distribution, UniformKeys):
            buckets = 1  # all ranks identical: one bucket is exact
        # Geometric rank boundaries: fine buckets for hot ranks.
        edges = np.unique(
            np.floor(
                np.power(float(keyspace), np.linspace(0.0, 1.0, buckets + 1))
            ).astype(np.int64)
        )
        edges[0] = 0
        edges[-1] = keyspace
        edges = np.unique(edges)
        self._counts = (edges[1:] - edges[:-1]).astype(np.float64)
        mid = (edges[:-1] + np.maximum(edges[1:] - 1, edges[:-1])) / 2.0
        probs = distribution.rank_probabilities(mid)
        # Renormalize so bucket masses sum to exactly 1: the midpoint
        # approximation otherwise drifts for very skewed distributions.
        mass = probs * self._counts
        scale = mass.sum()
        if scale <= 0:
            raise ConfigurationError("distribution has zero total mass")
        self._probs = probs / scale
        self._distribution = distribution

    @property
    def keyspace(self) -> int:
        """Total number of distinct keys in the model."""
        return int(self._counts.sum())

    @property
    def buckets(self) -> int:
        """Number of rank buckets."""
        return len(self._counts)

    def empty_profile(self) -> Profile:
        """Profile of a component holding no keys."""
        return np.zeros_like(self._counts)

    def flush_profile(self, writes: float) -> Profile:
        """Profile of a memtable flushed after ``writes`` raw writes."""
        if writes < 0:
            raise ConfigurationError("write count must be non-negative")
        per_key_miss = np.exp(writes * np.log1p(-np.minimum(self._probs, 1 - 1e-12)))
        return self._counts * (1.0 - per_key_miss)

    def merge_profiles(self, profiles: list[Profile]) -> Profile:
        """Profile of the component produced by merging ``profiles``."""
        if not profiles:
            raise ConfigurationError("cannot merge zero profiles")
        miss = np.ones_like(self._counts)
        for profile in profiles:
            fraction = np.clip(profile / self._counts, 0.0, 1.0)
            miss *= 1.0 - fraction
        return self._counts * (1.0 - miss)

    def unique_count(self, profile: Profile) -> float:
        """Expected total distinct keys in a profile."""
        return float(profile.sum())

    def loaded_profile(self) -> Profile:
        """Profile of a fully loaded keyspace (every key present once)."""
        return self._counts.copy()

    def merge_slice(self, restricted: list[Profile], width: float) -> Profile:
        """Union of profiles restricted to a key slice of width ``width``.

        Used by the partitioned-LSM simulator: ``restricted`` holds each
        input's profile already scaled to its overlap with the output
        slice (scrambled distributions spread every rank bucket uniformly
        across the key range, so restriction is multiplication by the
        overlap fraction). Bucket ``g`` of the slice holds ``n_g * width``
        keys, and the union follows the same independence formula as
        :meth:`merge_profiles`.
        """
        if not restricted:
            raise ConfigurationError("cannot merge zero profiles")
        if not 0.0 < width <= 1.0:
            raise ConfigurationError("slice width must be in (0, 1]")
        counts = np.maximum(self._counts * width, 1e-12)
        miss = np.ones_like(counts)
        for profile in restricted:
            fraction = np.clip(profile / counts, 0.0, 1.0)
            miss *= 1.0 - fraction
        return counts * (1.0 - miss)

    def sub_model(self, fraction: float) -> "KeyspaceModel":
        """Model of a key-range slice covering ``fraction`` of the keyspace.

        Scrambled distributions spread rank popularity uniformly across the
        key range, so a slice holds ``fraction`` of every rank bucket and
        the conditional per-draw probabilities scale by ``1 / fraction``.
        Used by the partitioned-LSM simulator for per-file reclamation.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("slice fraction must be in (0, 1]")
        clone = object.__new__(KeyspaceModel)
        clone._counts = np.maximum(self._counts * fraction, 1e-9)
        clone._probs = self._probs / fraction
        clone._distribution = self._distribution
        return clone

    def __repr__(self) -> str:
        return (
            f"KeyspaceModel({self._distribution!r}, buckets={self.buckets})"
        )
