"""Workload generation: key distributions, arrival processes, records.

The simulator consumes :class:`ArrivalProcess` and :class:`KeyspaceModel`;
the real storage engine consumes :class:`RecordGenerator` streams.
"""

from .arrivals import (
    ArrivalProcess,
    BurstPhase,
    BurstyArrivals,
    ClosedArrivals,
    ConstantArrivals,
)
from .distributions import (
    HotspotKeys,
    KeyDistribution,
    LatestKeys,
    UniformKeys,
    ZipfianKeys,
)
from .keyspace import KeyspaceModel, Profile
from .mixes import (
    OPERATIONS,
    TraceOp,
    YCSB_MIXES,
    YCSBWorkload,
    load_trace,
    replay_trace,
    save_trace,
)
from .records import GeneratedRecord, RecordGenerator, decode_key, encode_key

__all__ = [
    "ArrivalProcess",
    "BurstPhase",
    "BurstyArrivals",
    "ClosedArrivals",
    "ConstantArrivals",
    "GeneratedRecord",
    "HotspotKeys",
    "KeyDistribution",
    "KeyspaceModel",
    "LatestKeys",
    "OPERATIONS",
    "TraceOp",
    "YCSBWorkload",
    "YCSB_MIXES",
    "Profile",
    "RecordGenerator",
    "UniformKeys",
    "ZipfianKeys",
    "decode_key",
    "encode_key",
    "load_trace",
    "replay_trace",
    "save_trace",
]
