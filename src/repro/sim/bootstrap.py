"""Initial tree construction: the paper's 100-million-record load.

Every experiment in the paper first loads the LSM-tree with the full
keyspace in random order, then runs updates against the *stable* tree.
These helpers construct the corresponding steady-shape component stacks
for each policy family so a simulation starts from a loaded tree rather
than an empty one. (Like the paper — which excludes the first 20 minutes
of the testing phase — measurements still skip a warm-up prefix, so the
bootstrap only needs to be plausible, not exact.)

Profiles are "uniform random subset" profiles: a component holding ``u``
unique keys gets ``loaded_profile * (u / N)``, i.e. each key is present
with probability ``u/N`` — consistent with what merges of random update
batches produce.
"""

from __future__ import annotations

import math

from ..core.components import Component, UidAllocator
from ..core.policies.lazy_leveling import LazyLevelingPolicy
from ..core.policies.leveling import LevelingPolicy
from ..core.policies.partitioned import PartitionedLevelingPolicy
from ..core.policies.size_tiered import SizeTieredPolicy
from ..core.policies.tiering import TieringPolicy
from ..errors import ConfigurationError
from ..workloads.keyspace import KeyspaceModel
from .config import SimConfig


def _subset_component(
    uids: UidAllocator,
    keyspace: KeyspaceModel,
    config: SimConfig,
    level: int,
    unique: float,
    key_lo: float = 0.0,
    key_hi: float = 1.0,
) -> Component:
    # The profile of a random subset of u keys restricted to a slice of
    # width w holds u * w keys... expressed in global buckets, a subset
    # with in-slice presence probability q has profile loaded * w * q;
    # for a desired in-slice unique count u, q = u / (total * w), which
    # collapses to loaded * (u / total) independent of the width.
    total = keyspace.keyspace
    unique = min(unique, total * (key_hi - key_lo) * 0.999)
    profile = keyspace.loaded_profile() * (unique / total)
    return Component(
        uid=uids.next(),
        level=level,
        size_bytes=max(unique * config.entry_bytes, 1.0),
        entry_count=unique,
        key_lo=key_lo,
        key_hi=key_hi,
        profile=profile,
    )


def loaded_leveling_tree(
    policy: LevelingPolicy,
    keyspace: KeyspaceModel,
    config: SimConfig,
    uids: UidAllocator,
) -> list[Component]:
    """One component per level; intermediate levels half full, the last
    level holding the bulk of the keyspace (paper: "nearly full")."""
    components: list[Component] = []
    remaining = float(keyspace.keyspace)
    last_unique = remaining * 0.9
    components.append(
        _subset_component(uids, keyspace, config, policy.levels, last_unique)
    )
    for level in range(1, policy.levels):
        capacity_entries = policy.level_capacity_bytes(level) / config.entry_bytes
        components.append(
            _subset_component(
                uids, keyspace, config, level, capacity_entries * 0.5
            )
        )
    return components


def loaded_tiering_tree(
    policy: TieringPolicy,
    keyspace: KeyspaceModel,
    config: SimConfig,
    uids: UidAllocator,
) -> list[Component]:
    """Half-full levels of ``T``-sized runs; the last level splits the
    bulk of the keyspace across two components."""
    components: list[Component] = []
    total = float(keyspace.keyspace)
    last = policy.levels - 1
    for share in (0.5, 0.4):
        components.append(
            _subset_component(uids, keyspace, config, last, total * share)
        )
    memory_entries = config.memory_component_entries
    for level in range(0, last):
        run_entries = memory_entries * policy.size_ratio**level
        for _ in range(max(1, policy.size_ratio // 2)):
            components.append(
                _subset_component(uids, keyspace, config, level, run_entries)
            )
    return components


def loaded_size_tiered_stack(
    policy: SizeTieredPolicy,
    keyspace: KeyspaceModel,
    config: SimConfig,
    uids: UidAllocator,
    decay: float = 3.0,
) -> list[Component]:
    """A geometric stack resembling Figure 18: one big old component and
    geometrically smaller, younger ones down to the memory size."""
    if decay <= 1:
        raise ConfigurationError("stack decay must exceed 1")
    components: list[Component] = []
    total = float(keyspace.keyspace)
    unique = total * 0.8
    floor = config.memory_component_entries
    while unique > floor:
        components.append(
            _subset_component(uids, keyspace, config, 0, unique)
        )
        unique /= decay
    return components


def loaded_partitioned_tree(
    policy: PartitionedLevelingPolicy,
    keyspace: KeyspaceModel,
    config: SimConfig,
    uids: UidAllocator,
) -> list[Component]:
    """Partitioned levels at ~90% of target; the last level holds the
    keyspace remainder, all split into ``max_file_bytes`` files."""
    components: list[Component] = []
    total = float(keyspace.keyspace)
    assigned = 0.0
    for level in range(1, policy.levels):
        level_unique = min(
            policy.level_target_bytes(level) / config.entry_bytes * 0.9,
            total * 0.05,
        )
        components.extend(
            _partitioned_level(
                uids, keyspace, config, policy, level, level_unique
            )
        )
        assigned += level_unique
    last_unique = max(total * 0.5, total - assigned) * 0.95
    components.extend(
        _partitioned_level(
            uids, keyspace, config, policy, policy.levels, last_unique
        )
    )
    return components


def _partitioned_level(
    uids: UidAllocator,
    keyspace: KeyspaceModel,
    config: SimConfig,
    policy: PartitionedLevelingPolicy,
    level: int,
    unique: float,
) -> list[Component]:
    total_bytes = unique * config.entry_bytes
    count = max(1, int(math.ceil(total_bytes / policy.max_file_bytes)))
    width = 1.0 / count
    loaded = keyspace.loaded_profile()
    total_keys = keyspace.keyspace
    files = []
    for index in range(count):
        lo = index * width
        hi = (index + 1) * width if index < count - 1 else 1.0
        profile = loaded * (unique / total_keys) * (hi - lo)
        files.append(
            Component(
                uid=uids.next(),
                level=level,
                size_bytes=total_bytes / count,
                entry_count=unique / count,
                key_lo=lo,
                key_hi=hi,
                profile=profile,
            )
        )
    return files


def loaded_lazy_leveling_tree(
    policy: LazyLevelingPolicy,
    keyspace: KeyspaceModel,
    config: SimConfig,
    uids: UidAllocator,
) -> list[Component]:
    """Lazy leveling: half-full tiered levels plus one big leveled run."""
    components: list[Component] = []
    total = float(keyspace.keyspace)
    last = policy.levels - 1
    components.append(
        _subset_component(uids, keyspace, config, last, total * 0.9)
    )
    memory_entries = config.memory_component_entries
    for level in range(0, last):
        run_entries = memory_entries * policy.size_ratio**level
        for _ in range(max(1, policy.size_ratio // 2)):
            components.append(
                _subset_component(uids, keyspace, config, level, run_entries)
            )
    return components
