"""The fluid discrete-event LSM-tree simulator.

This is the substrate on which all of the paper's experiments are
reproduced. Real LSM write stalls arise from the mismatch between fast
in-memory writes and bandwidth-limited background I/O; on the paper's
testbed that mismatch plays out in wall-clock time, which a Python
process cannot measure faithfully (interpreter overhead would swamp the
I/O timing). So the simulator moves time itself into the model:

* Writes are a *fluid*: between events they flow at a piecewise-constant
  rate into the active memory component, constrained by the arrival
  process (open system), the memory write rate (CPU ceiling), and the
  write control's admission rate (stall logic).
* Flushes and merges consume a shared I/O bandwidth budget. Flushes get
  priority (Section 3.1's setup); the merge scheduler divides the
  remainder among in-flight merges.
* Merge outputs are computed analytically from the keyspace model —
  expected unique keys after reclamation — so component sizes, merge
  times, and therefore stalls are deterministic.
* Event boundaries are exactly the instants at which any rate changes:
  a memory component fills, a flush or merge completes, the arrival rate
  switches (bursts), or the write queue drains. Between events every
  state variable evolves linearly, so integration is exact.

The simulator exercises the *same* policy/scheduler/constraint/control
objects as the real storage engine, which is the point: scheduling
decisions, not I/O mechanics, are what the paper studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.components import Component, MergeDescriptor, TreeSnapshot, UidAllocator
from ..core.policies.base import MergePolicy
from ..core.schedulers.base import MergeScheduler
from ..core.schedulers.constraints import ComponentConstraint
from ..core.schedulers.write_control import StopControl, WriteControl
from ..errors import SimulationError
from ..metrics import CumulativeCurve, StepSeries, WindowedCounter
from ..workloads.arrivals import ArrivalProcess
from ..workloads.keyspace import KeyspaceModel
from .config import SimConfig
from .result import ForceEvent, MergeRecord, SimResult

_EPSILON = 1e-9
_FILL_EPSILON = 1e-6  # entries; absorbs float residue at the fill boundary
_QUEUE_EPSILON = 1e-6  # entries; a queue this small counts as drained
_BYTES_EPSILON = 1.0  # merges within one byte of done are done


@dataclass
class _FlushRun:
    """An in-flight flush: the memory component being written to disk."""

    raw_entries: float
    unique_entries: float
    total_bytes: float
    remaining_bytes: float
    profile: np.ndarray
    started_at: float


@dataclass
class _MergeRun:
    """Executor-side state of an in-flight merge."""

    descriptor: MergeDescriptor
    out_profile: np.ndarray
    out_total: float
    out_remaining: float
    in_total: float
    key_lo: float
    key_hi: float
    started_at: float


class SimulatedLSMTree:
    """Fluid simulation of one LSM-tree under a policy/scheduler pair.

    Parameters
    ----------
    config:
        The testbed (:class:`~repro.sim.config.SimConfig`).
    policy, scheduler, constraint:
        The merge policy, bandwidth allocator and component constraint.
    write_control:
        Interaction-with-writes mode; defaults to the paper-recommended
        :class:`~repro.core.schedulers.write_control.StopControl`.
    keyspace:
        Analytic key distribution model driving merge reclamation.
    arrivals:
        The arrival process (closed for the testing phase, constant or
        bursty for the running phase).
    initial_components:
        Pre-loaded disk components (see :mod:`repro.sim.bootstrap`),
        mirroring the paper's 100-million-record initial load.
    window:
        Width of throughput-averaging windows (paper: 30 s).
    """

    def __init__(
        self,
        config: SimConfig,
        policy: MergePolicy,
        scheduler: MergeScheduler,
        constraint: ComponentConstraint,
        keyspace: KeyspaceModel,
        arrivals: ArrivalProcess,
        write_control: WriteControl | None = None,
        initial_components: Iterable[Component] | None = None,
        window: float = 30.0,
    ) -> None:
        self._config = config
        self._policy = policy
        self._scheduler = scheduler
        self._constraint = constraint
        self._control = write_control if write_control is not None else StopControl()
        self._keyspace = keyspace
        self._arrivals = arrivals
        self._window = window
        self._uids = UidAllocator()

        # --- mutable simulation state ---
        self._now = 0.0
        self._memtable_fill = 0.0
        self._immutables: list[float] = []  # raw entry counts awaiting flush
        self._flush: _FlushRun | None = None
        self._levels: dict[int, list[Component]] = {}
        self._merges: list[MergeDescriptor] = []
        self._merge_runs: dict[int, _MergeRun] = {}
        self._allocation: dict[int, float] = {}
        self._queue = 0.0
        self._stalled_memory = False
        self._stall_started: float | None = None

        # --- traces ---
        self._arrival_curve = CumulativeCurve()
        self._departure_curve = CumulativeCurve()
        self._throughput = WindowedCounter(window)
        self._component_series = StepSeries()
        self._io_activity = WindowedCounter(window)
        self._merge_log: list[MergeRecord] = []
        self._force_events: list[ForceEvent] = []
        self._stall_intervals: list[tuple[float, float]] = []
        self._proc_values: list[float] = []
        self._proc_weights: list[float] = []

        for component in initial_components or ():
            # Re-register under this tree's allocator so bootstrap-built
            # components can never collide with runtime-created uids.
            component.uid = self._uids.next()
            self._levels.setdefault(component.level, []).append(component)
        self._component_series.record(0.0, self._component_count())

    # ------------------------------------------------------------------
    # small state helpers
    # ------------------------------------------------------------------

    def _component_count(self) -> int:
        return sum(len(components) for components in self._levels.values())

    def _snapshot(self) -> TreeSnapshot:
        ordered: list[Component] = []
        for level in sorted(self._levels):
            ordered.extend(self._levels[level])
        return TreeSnapshot(ordered)

    @property
    def clock(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def disk_component_count(self) -> int:
        """Number of disk components right now."""
        return self._component_count()

    def levels_view(self) -> dict[int, list[Component]]:
        """A copy of the per-level component lists (for tests/inspection)."""
        return {level: list(items) for level, items in self._levels.items()}

    # ------------------------------------------------------------------
    # rate computation
    # ------------------------------------------------------------------

    def _flush_bandwidth(self) -> float:
        if self._flush is None:
            return 0.0
        return self._config.bandwidth_bytes_per_s

    def _merge_budget(self) -> float:
        budget = self._config.bandwidth_bytes_per_s
        if self._config.flush_costs_io and self._flush is not None:
            budget -= self._flush_bandwidth()
        return max(budget, 0.0)

    def _reallocate(self) -> None:
        budget = self._merge_budget()
        if self._merges and budget > 0:
            snapshot = self._snapshot()
            self._allocation = dict(
                self._scheduler.allocate(self._merges, budget, snapshot)
            )
        else:
            self._allocation = {}

    def _admission_rate(self) -> float:
        snapshot = self._snapshot()
        admitted = self._control.admission_rate(
            snapshot, self._constraint, self._merges, self._allocation, self._now
        )
        return min(admitted, self._config.memory_write_rate)

    def _inflow(self, capacity: float, arrival_rate: float) -> float:
        """Current write-processing rate given capacity and arrivals."""
        if self._stalled_memory or capacity <= 0:
            return 0.0
        if math.isinf(arrival_rate):
            return capacity  # closed system: always more to write
        if self._queue > _QUEUE_EPSILON:
            return capacity  # draining the backlog
        return min(arrival_rate, capacity)

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _rotate_memtable(self) -> bool:
        """Seal the active memory component; True if rotation happened.

        An empty active memtable rotates as a no-op success: there is
        nothing to seal, and flushing zero entries would create
        zero-entry disk components.
        """
        if self._memtable_fill <= _FILL_EPSILON:
            return True
        if len(self._immutables) >= self._config.num_memory_components - 1:
            return False
        self._immutables.append(self._memtable_fill)
        self._memtable_fill = 0.0
        self._maybe_start_flush()
        return True

    def _maybe_start_flush(self) -> None:
        if self._flush is not None or not self._immutables:
            return
        raw = self._immutables.pop(0)
        profile = self._keyspace.flush_profile(raw)
        unique = self._keyspace.unique_count(profile)
        total_bytes = max(unique * self._config.entry_bytes, _BYTES_EPSILON)
        self._flush = _FlushRun(
            raw_entries=raw,
            unique_entries=unique,
            total_bytes=total_bytes,
            remaining_bytes=total_bytes,
            profile=profile,
            started_at=self._now,
        )

    def _finish_flush(self) -> None:
        flush = self._flush
        if flush is None:
            raise SimulationError("flush completion without an active flush")
        self._flush = None
        component = Component(
            uid=self._uids.next(),
            level=0,
            size_bytes=flush.total_bytes,
            entry_count=flush.unique_entries,
            profile=flush.profile,
        )
        self._levels.setdefault(0, []).append(component)
        self._component_series.record(self._now, self._component_count())
        if self._config.force_at_end_only:
            self._force_events.append(ForceEvent(self._now, flush.total_bytes))
        # Keep flushing, then un-stall writers waiting for memory space.
        # The order matters: starting the next flush first frees an
        # immutable slot, so the waiting (full) active memtable can seal.
        self._maybe_start_flush()
        if self._stalled_memory and self._rotate_memtable():
            self._stalled_memory = False
        self._schedule_new_merges()

    def _merged_profile(self, inputs: Sequence[Component]) -> np.ndarray:
        """Expected unique-key profile of a merge's output.

        Components may cover different key slices (partitioned files), so
        the union is computed per elementary key interval: within an
        interval, covering components combine by the independence formula;
        across disjoint intervals, unique counts simply add.
        """
        bounds = sorted({c.key_lo for c in inputs} | {c.key_hi for c in inputs})
        if len(bounds) == 2:  # all inputs cover the same slice
            width = bounds[1] - bounds[0]
            if width >= 1.0 - _EPSILON:
                return self._keyspace.merge_profiles([c.profile for c in inputs])
            return self._keyspace.merge_slice(
                [c.profile.copy() for c in inputs], width
            )
        out_profile = self._keyspace.empty_profile()
        for lo, hi in zip(bounds, bounds[1:]):
            width = hi - lo
            if width <= _EPSILON:
                continue
            restricted = [
                c.profile * (width / c.key_width)
                for c in inputs
                if c.key_lo <= lo + _EPSILON and c.key_hi >= hi - _EPSILON
            ]
            if restricted:
                out_profile += self._keyspace.merge_slice(restricted, width)
        return out_profile

    def _start_merge(self, descriptor: MergeDescriptor) -> None:
        inputs = descriptor.inputs
        key_lo = min(c.key_lo for c in inputs)
        key_hi = max(c.key_hi for c in inputs)
        out_profile = self._merged_profile(inputs)
        unique = self._keyspace.unique_count(out_profile)
        out_total = max(unique * self._config.entry_bytes, _BYTES_EPSILON)
        run = _MergeRun(
            descriptor=descriptor,
            out_profile=out_profile,
            out_total=out_total,
            out_remaining=out_total,
            in_total=max(descriptor.input_bytes, _BYTES_EPSILON),
            key_lo=key_lo,
            key_hi=key_hi,
            started_at=self._now,
        )
        self._merges.append(descriptor)
        self._merge_runs[descriptor.uid] = run

    def _split_partitioned_output(
        self, run: _MergeRun
    ) -> list[Component]:
        """Split a partitioned merge's output into bounded-size files."""
        max_file = getattr(self._policy, "max_file_bytes", None)
        if max_file is None or run.descriptor.target_level < 1:
            return []
        count = max(1, int(math.ceil(run.out_total / max_file)))
        width = (run.key_hi - run.key_lo) / count
        unique = self._keyspace.unique_count(run.out_profile)
        files = []
        for index in range(count):
            files.append(
                Component(
                    uid=self._uids.next(),
                    level=run.descriptor.target_level,
                    size_bytes=run.out_total / count,
                    entry_count=unique / count,
                    key_lo=run.key_lo + index * width,
                    key_hi=run.key_lo + (index + 1) * width,
                    profile=run.out_profile / count,
                )
            )
        files[-1].key_hi = run.key_hi  # avoid floating drift at the seam
        return files

    def _finish_merge(self, uid: int) -> None:
        run = self._merge_runs.pop(uid)
        descriptor = run.descriptor
        self._merges.remove(descriptor)
        target = descriptor.target_level
        target_list = self._levels.setdefault(target, [])
        # Age position: output replaces its oldest input within the target
        # level (size-tiered windows, last-level self-merges); merges
        # arriving from a younger level append as the target's newest.
        input_ids = {c.uid for c in descriptor.inputs}
        position = len(target_list)
        for index, resident in enumerate(target_list):
            if resident.uid in input_ids:
                position = index
                break
        for level_list in self._levels.values():
            level_list[:] = [c for c in level_list if c.uid not in input_ids]
        descriptor.release_inputs()

        partitioned = self._split_partitioned_output(run)
        if partitioned:
            merged = target_list + partitioned
            merged.sort(key=lambda c: c.key_lo)
            self._levels[target] = merged
        else:
            unique = self._keyspace.unique_count(run.out_profile)
            if unique * self._config.entry_bytes > _BYTES_EPSILON:
                output = Component(
                    uid=self._uids.next(),
                    level=target,
                    size_bytes=unique * self._config.entry_bytes,
                    entry_count=unique,
                    key_lo=run.key_lo,
                    key_hi=run.key_hi,
                    profile=run.out_profile,
                )
                target_list.insert(min(position, len(target_list)), output)
        self._component_series.record(self._now, self._component_count())
        self._merge_log.append(
            MergeRecord(
                completed_at=self._now,
                started_at=run.started_at,
                input_count=len(descriptor.inputs),
                level0_inputs=sum(
                    1 for c in descriptor.inputs if c.level == 0
                ),
                input_bytes=run.in_total,
                output_bytes=run.out_total,
                target_level=target,
                reason=descriptor.reason,
            )
        )
        if self._config.force_at_end_only:
            self._force_events.append(ForceEvent(self._now, run.out_total))
        self._schedule_new_merges()

    def _schedule_new_merges(self) -> None:
        snapshot = self._snapshot()
        for descriptor in self._policy.select_merges(
            snapshot, self._uids, self._merges
        ):
            self._start_merge(descriptor)

    # ------------------------------------------------------------------
    # stall bookkeeping
    # ------------------------------------------------------------------

    def _note_stall_state(self, stalled: bool) -> None:
        if stalled and self._stall_started is None:
            self._stall_started = self._now
        elif not stalled and self._stall_started is not None:
            duration = self._now - self._stall_started
            if duration > _EPSILON:
                self._stall_intervals.append((self._stall_started, self._now))
                # The write caught at the stall's head waited it out.
                self._proc_values.append(duration)
                self._proc_weights.append(1.0)
            self._stall_started = None

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self, duration: float) -> SimResult:
        """Simulate ``duration`` virtual seconds and return the traces."""
        if duration <= 0:
            raise SimulationError("run duration must be positive")
        config = self._config
        memtable_capacity = config.memory_component_entries
        closed = math.isinf(self._arrivals.rate_at(0.0))
        events = 0
        self._schedule_new_merges()
        self._reallocate()

        while self._now < duration - _EPSILON:
            events += 1
            if events > config.max_events:
                raise SimulationError(
                    f"simulation exceeded {config.max_events} events; "
                    "likely a runaway configuration"
                )

            arrival_rate = self._arrivals.rate_at(self._now)
            capacity = self._admission_rate()
            demand = (
                math.isinf(arrival_rate)
                or arrival_rate > 0
                or self._queue > _QUEUE_EPSILON
            )
            inflow = self._inflow(capacity, arrival_rate)
            self._note_stall_state(demand and inflow <= _EPSILON)

            # --- candidate next events ---
            horizon = duration
            candidates = [horizon, self._arrivals.next_change(self._now)]
            if inflow > 0:
                candidates.append(
                    self._now + (memtable_capacity - self._memtable_fill) / inflow
                )
            if (
                self._queue > _QUEUE_EPSILON
                and not math.isinf(arrival_rate)
                and inflow > arrival_rate
            ):
                candidates.append(
                    self._now + self._queue / (inflow - arrival_rate)
                )
            flush_bw = self._flush_bandwidth()
            if self._flush is not None and flush_bw > 0:
                candidates.append(
                    self._now + self._flush.remaining_bytes / flush_bw
                )
            for uid, bandwidth in self._allocation.items():
                if bandwidth > 0:
                    run = self._merge_runs[uid]
                    candidates.append(self._now + run.out_remaining / bandwidth)
            if config.reallocation_interval is not None:
                candidates.append(self._now + config.reallocation_interval)

            next_time = min(candidates)
            if next_time < self._now - _EPSILON:
                raise SimulationError("event time went backwards")
            next_time = max(next_time, self._now)
            dt = next_time - self._now

            # --- integrate the fluid over [now, next_time) ---
            if dt > 0:
                written = inflow * dt
                # Extend even when nothing was written: the departure
                # curve must record stalls as flat segments, or latency
                # inversion would interpolate progress across them.
                self._departure_curve.extend(
                    next_time, self._departure_curve.final_total + written
                )
                if written > 0:
                    self._throughput.add(self._now, next_time, written)
                    self._memtable_fill = min(
                        memtable_capacity, self._memtable_fill + written
                    )
                    if capacity > 0:
                        self._proc_values.append(1.0 / capacity)
                        self._proc_weights.append(written)
                if not closed:
                    arrived = (
                        0.0 if math.isinf(arrival_rate) else arrival_rate * dt
                    )
                    self._arrival_curve.extend(
                        next_time, self._arrival_curve.final_total + arrived
                    )
                    self._queue = max(0.0, self._queue + arrived - written)
                    if self._queue < _QUEUE_EPSILON:
                        self._queue = 0.0
                if self._flush is not None:
                    self._flush.remaining_bytes -= flush_bw * dt
                io_rate = flush_bw
                for uid, bandwidth in self._allocation.items():
                    if bandwidth <= 0:
                        continue
                    run = self._merge_runs[uid]
                    run.out_remaining -= bandwidth * dt
                    consumed = bandwidth * dt * run.in_total / run.out_total
                    run.descriptor.remaining_input_bytes = max(
                        0.0, run.descriptor.remaining_input_bytes - consumed
                    )
                    io_rate += bandwidth
                if io_rate > 0:
                    self._io_activity.add(self._now, next_time, io_rate * dt)

            self._now = next_time

            # --- fire whatever became due ---
            if self._memtable_fill >= memtable_capacity - _FILL_EPSILON:
                # A successful rotation must clear any memory stall: the
                # stall flag tracks "active memtable sealed but no slot",
                # and leaving it set after a slot freed up would later
                # rotate an empty memtable into a zero-entry component.
                self._stalled_memory = not self._rotate_memtable()
            if (
                self._flush is not None
                and self._flush.remaining_bytes <= _BYTES_EPSILON
            ):
                self._finish_flush()
            for uid in [
                uid
                for uid, run in self._merge_runs.items()
                if run.out_remaining <= _BYTES_EPSILON
                and self._allocation.get(uid, 0.0) > 0
            ]:
                self._finish_merge(uid)
            self._reallocate()

        # Close the books: end any open stall, flatten the curves.
        self._note_stall_state(False)
        if closed:
            # The closed model's arrivals are its departures by definition.
            self._arrival_curve.extend(
                self._now, self._departure_curve.final_total
            )
        return SimResult(
            duration=duration,
            window=self._window,
            arrivals=self._arrival_curve,
            departures=self._departure_curve,
            throughput=self._throughput,
            components=self._component_series,
            io_activity=self._io_activity,
            merge_log=self._merge_log,
            force_events=self._force_events,
            stall_intervals=self._stall_intervals,
            processing_values=np.asarray(self._proc_values, dtype=np.float64),
            processing_weights=np.asarray(self._proc_weights, dtype=np.float64),
            closed_system=closed,
            final_queue_length=self._queue,
        )
