"""Simulation configuration: the experimental setup of Section 3.1.

The defaults mirror the paper's testbed: 1 KB entries, 128 MB memory
components (two of them, to minimize flush stalls), a 100 MB/s I/O
bandwidth budget enforced by a rate limiter, SSD forces every 16 MB, and a
100-million-record dataset. :meth:`SimConfig.scaled` produces
geometrically shrunken configurations that preserve every ratio the
analysis depends on (levels, size ratios, bandwidth-to-memory proportions)
while keeping simulated-event counts small enough for the benchmark
suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

#: Bytes per mebibyte, used throughout the paper's parameter listings.
MiB = float(2**20)


@dataclass(frozen=True)
class SimConfig:
    """All knobs of the simulated LSM testbed.

    Attributes
    ----------
    entry_bytes:
        Size of one record (paper: 1 KB).
    memory_component_bytes:
        Budget of one memory component (paper: 128 MB).
    num_memory_components:
        Memory components per tree; one active plus spares being flushed
        (paper: 2).
    bandwidth_bytes_per_s:
        The I/O write-bandwidth budget shared by flushes and merges
        (paper: 100 MB/s via a rate limiter).
    memory_write_rate:
        CPU-bound ceiling on in-memory writes, entries/second; must be
        high enough that the closed-system maximum is I/O-bound, as it is
        on the paper's testbed.
    total_keys:
        Unique keys loaded before the experiment (paper: 100 million).
    flush_costs_io:
        When True (default, faithful), an active flush takes priority for
        the whole bandwidth budget and merges pause; when False, flushes
        run on dedicated bandwidth — useful for validating the simulator
        against the closed-form model, which ignores flush I/O.
    force_interval_bytes:
        Periodic-force interval for flush/merge writes (paper: 16 MB); a
        force of ``s`` bytes blocks concurrent queries for
        ``s / force_drain_bytes_per_s`` seconds.
    force_drain_bytes_per_s:
        Device burst rate at which a force drains the OS I/O queue.
    force_at_end_only:
        When True, reproduce the "force only at merge completion" variant
        of the query experiments (Figures 14-17): one force of the whole
        component instead of periodic 16 MB forces.
    reallocation_interval:
        When set, bandwidth allocations are also refreshed every this many
        simulated seconds (needed by progress-coupled schedulers such as
        bLSM's spring-and-gear); None refreshes only at state changes.
    max_events:
        Hard cap on simulation events; exceeding it raises, catching
        accidental infinite event loops.
    """

    entry_bytes: float = 1024.0
    memory_component_bytes: float = 128 * MiB
    num_memory_components: int = 2
    bandwidth_bytes_per_s: float = 100 * MiB
    memory_write_rate: float = 500_000.0
    total_keys: int = 100_000_000
    flush_costs_io: bool = True
    force_interval_bytes: float = 16 * MiB
    force_drain_bytes_per_s: float = 500 * MiB
    force_at_end_only: bool = False
    reallocation_interval: float | None = None
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.entry_bytes <= 0:
            raise ConfigurationError("entry_bytes must be positive")
        if self.memory_component_bytes < self.entry_bytes:
            raise ConfigurationError("memory component smaller than one entry")
        if self.num_memory_components < 1:
            raise ConfigurationError("need at least one memory component")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth budget must be positive")
        if self.memory_write_rate <= 0:
            raise ConfigurationError("memory write rate must be positive")
        if self.total_keys < 1:
            raise ConfigurationError("total_keys must be positive")
        if self.force_interval_bytes <= 0:
            raise ConfigurationError("force interval must be positive")
        if self.force_drain_bytes_per_s <= 0:
            raise ConfigurationError("force drain rate must be positive")
        if self.reallocation_interval is not None and self.reallocation_interval <= 0:
            raise ConfigurationError("reallocation interval must be positive")
        if self.max_events < 1000:
            raise ConfigurationError("max_events is implausibly small")

    @property
    def memory_component_entries(self) -> float:
        """Entries that fit in one memory component."""
        return self.memory_component_bytes / self.entry_bytes

    @property
    def bandwidth_entries_per_s(self) -> float:
        """The I/O budget expressed in entries/second (Table 1's ``B``)."""
        return self.bandwidth_bytes_per_s / self.entry_bytes

    @property
    def total_bytes(self) -> float:
        """Unique-data footprint of the loaded dataset."""
        return self.total_keys * self.entry_bytes

    def scaled(self, factor: float) -> "SimConfig":
        """A geometrically shrunken testbed for fast benchmark runs.

        Divides the dataset, the memory component, the bandwidth budget,
        and the CPU write ceiling by ``factor``. Every *ratio* the
        analysis depends on is preserved — level counts (``total /
        memory``), flush and merge durations (``memory / bandwidth``),
        and the CPU-to-I/O speed gap — so the simulated timeline is
        identical to the paper-scale testbed with all throughputs divided
        by ``factor``. Event counts drop by the same factor, which is
        what makes the benchmark suite fast.
        """
        if factor < 1:
            raise ConfigurationError("scale factor must be at least 1")
        return replace(
            self,
            memory_component_bytes=self.memory_component_bytes / factor,
            total_keys=max(1, int(self.total_keys / factor)),
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s / factor,
            memory_write_rate=self.memory_write_rate / factor,
            force_interval_bytes=max(
                self.entry_bytes, self.force_interval_bytes / factor
            ),
            force_drain_bytes_per_s=self.force_drain_bytes_per_s / factor,
        )

    def with_(self, **overrides) -> "SimConfig":
        """Functional update (a readable alias for ``dataclasses.replace``)."""
        return replace(self, **overrides)


def paper_config() -> SimConfig:
    """The testbed exactly as Section 3.1 describes it."""
    return SimConfig()


def bench_config(scale: float = 128.0) -> SimConfig:
    """The default shrunken testbed used by this repo's benchmarks.

    ``scale=128`` gives a 1 MB memory component and ~780k keys: the same
    three-level leveling / eight-level tiering shapes as the paper's
    setup, with merges completing in well under a simulated second so a
    full two-phase experiment costs a few thousand events.
    """
    if not math.isfinite(scale):
        raise ConfigurationError("scale must be finite")
    return paper_config().scaled(scale)
