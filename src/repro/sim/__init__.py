"""The discrete-event LSM simulator: the reproduction's testbed substrate."""

from .bootstrap import (
    loaded_lazy_leveling_tree,
    loaded_leveling_tree,
    loaded_partitioned_tree,
    loaded_size_tiered_stack,
    loaded_tiering_tree,
)
from .config import MiB, SimConfig, bench_config, paper_config
from .export import load_result_dict, result_to_dict, save_result
from .lsm import SimulatedLSMTree
from .queries import (
    QueryDevice,
    QueryOutcome,
    QueryWorkload,
    pages_per_query,
    simulate_queries,
)
from .result import ForceEvent, MergeRecord, SimResult
from .secondary import (
    DatasetResult,
    EagerLookupControl,
    SecondarySetup,
    dataset_two_phase,
    simulate_dataset,
)

__all__ = [
    "DatasetResult",
    "EagerLookupControl",
    "ForceEvent",
    "MergeRecord",
    "MiB",
    "QueryDevice",
    "QueryOutcome",
    "QueryWorkload",
    "SecondarySetup",
    "SimConfig",
    "SimResult",
    "SimulatedLSMTree",
    "bench_config",
    "dataset_two_phase",
    "load_result_dict",
    "result_to_dict",
    "save_result",
    "pages_per_query",
    "simulate_dataset",
    "simulate_queries",
    "loaded_lazy_leveling_tree",
    "loaded_leveling_tree",
    "loaded_partitioned_tree",
    "loaded_size_tiered_stack",
    "loaded_tiering_tree",
    "paper_config",
]
