"""Concurrent query simulation (Sections 5.2.3 "Impact on Query
Performance" and 7.2 "Secondary Index Queries").

Queries in the paper's experiments are sensitive to exactly three things
the write path produces, all of which the write simulation traces:

* the **number of disk components** over time — point lookups pay a Bloom
  false-positive I/O per extra component, and range scans must touch every
  component;
* **merge/flush I/O activity** — background writes steal device time from
  reads (and post-stall catch-up bursts visibly dent query throughput,
  the Figure 16 effect);
* **disk forces** — a force of ``s`` bytes blocks the device for
  ``s / drain_rate`` seconds; regular 16 MB forces cost a little
  throughput everywhere, while force-at-merge-end creates rare but huge
  latency spikes (the Figures 15/17 percentile effect).

The query model evaluates each analysis window of a completed write-phase
:class:`~repro.sim.result.SimResult` and produces a query throughput
series plus weighted percentile latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..metrics import weighted_percentile_profile
from .config import SimConfig
from .result import SimResult


@dataclass(frozen=True)
class QueryWorkload:
    """One query type from the paper's evaluation.

    ``kind`` is ``"point"``, ``"short-scan"``, ``"long-scan"`` or
    ``"secondary"``; ``records`` is the number of records accessed
    (1, 100, and 1M in the paper — scaled setups shrink the long scan).
    ``threads`` is the number of concurrent query clients (paper: 8 for
    point/short, 4 for long scans).
    """

    kind: str
    records: float = 1.0
    threads: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("point", "short-scan", "long-scan", "secondary"):
            raise ConfigurationError(f"unknown query kind {self.kind!r}")
        if self.records < 1:
            raise ConfigurationError("records per query must be >= 1")
        if self.threads < 1:
            raise ConfigurationError("need at least one query thread")

    @classmethod
    def point_lookup(cls, threads: int = 8) -> "QueryWorkload":
        """Fetch one record by primary key."""
        return cls("point", 1.0, threads)

    @classmethod
    def short_scan(cls, records: float = 100.0, threads: int = 8) -> "QueryWorkload":
        """Range scan over ~100 records."""
        return cls("short-scan", records, threads)

    @classmethod
    def long_scan(cls, records: float, threads: int = 4) -> "QueryWorkload":
        """Range scan over a large record count (paper: one million)."""
        return cls("long-scan", records, threads)


@dataclass(frozen=True)
class QueryDevice:
    """The read side of the simulated SSD.

    ``read_pages_per_s`` defaults to four times the write-bandwidth page
    rate — SSD reads are cheaper than throttled writes. ``contention``
    scales how strongly concurrent flush/merge writes depress read
    capacity; the paper's 100 MB/s throttle exists precisely to bound
    this. ``regular_force_overhead`` is the small throughput tax of
    forcing every 16 MB.
    """

    page_bytes: float = 4096.0
    read_pages_per_s: float = 0.0
    op_latency_s: float = 0.001
    contention: float = 0.35
    regular_force_overhead: float = 0.05
    bloom_false_positive: float = 0.01

    @classmethod
    def for_config(cls, config: SimConfig, **overrides) -> "QueryDevice":
        """Device matched to a testbed config's bandwidth scale.

        Page-read capacity tracks the (scaled) write bandwidth; the
        per-operation round-trip latency — which is what bounds a small
        thread pool of point lookups — scales *up* as the bandwidth
        scales down, keeping the lookup-throughput-to-write-throughput
        ratio of the paper's testbed (about 1 ms per lookup at
        100 MB/s).
        """
        pages = 4.0 * config.bandwidth_bytes_per_s / 4096.0
        scale = (100 * 2**20) / config.bandwidth_bytes_per_s
        values = {"read_pages_per_s": pages, "op_latency_s": 0.001 * scale}
        values.update(overrides)
        return cls(**values)


@dataclass
class QueryOutcome:
    """Query-side results for one write-phase run."""

    workload: QueryWorkload
    window: float
    throughput: np.ndarray  # queries/s per window
    latency_values: np.ndarray
    latency_weights: np.ndarray

    def mean_throughput(self) -> float:
        """Average query throughput across windows."""
        return float(self.throughput.mean())

    def latency_profile(
        self, levels: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)
    ) -> dict[float, float]:
        """Weighted percentile query latencies."""
        return weighted_percentile_profile(
            self.latency_values, self.latency_weights, levels
        )


def pages_per_query(
    workload: QueryWorkload,
    components: float,
    device: QueryDevice,
    entry_bytes: float,
    secondary_components: float = 0.0,
) -> float:
    """Expected device page reads for one query given component counts.

    * Point lookups read one true page plus a Bloom-false-positive page
      per non-containing component.
    * Range scans seek into *every* component (Bloom filters do not help
      ranges) and then stream the requested records.
    * Secondary queries scan the secondary index (a seek per secondary
      component plus the matching-entry pages), sort the primary keys,
      and perform one point lookup per match.
    """
    records_per_page = max(device.page_bytes / entry_bytes, 1.0)
    if workload.kind == "point":
        return 1.0 + device.bloom_false_positive * max(components - 1.0, 0.0)
    if workload.kind in ("short-scan", "long-scan"):
        stream_pages = workload.records / records_per_page
        return components + stream_pages
    # secondary: index scan + sorted primary fetches
    index_pages = secondary_components + workload.records / records_per_page
    primary_pages = workload.records * (
        1.0 + device.bloom_false_positive * max(components - 1.0, 0.0)
    )
    return index_pages + primary_pages


def simulate_queries(
    result: SimResult,
    config: SimConfig,
    workload: QueryWorkload,
    device: QueryDevice | None = None,
    secondary_result: SimResult | None = None,
) -> QueryOutcome:
    """Evaluate a query workload against a completed write-phase run."""
    if device is None:
        device = QueryDevice.for_config(config)
    if device.read_pages_per_s <= 0:
        raise ConfigurationError("device read capacity must be positive")
    window = result.window
    windows = int(math.ceil(result.duration / window))
    io_rates = result.io_activity.rate_values(until=result.duration)
    if io_rates.size < windows:
        io_rates = np.pad(io_rates, (0, windows - io_rates.size))

    force_blocked = np.zeros(windows)
    force_sizes: dict[int, float] = {}
    if config.force_at_end_only:
        for event in result.force_events:
            idx = min(int(event.time // window), windows - 1)
            duration = event.bytes / config.force_drain_bytes_per_s
            force_blocked[idx] += duration
            force_sizes[idx] = max(force_sizes.get(idx, 0.0), duration)
    # Regular forces: the blocked time is io_bytes / drain_rate spread
    # evenly; individual blockages last force_interval / drain_rate.
    regular_spike = config.force_interval_bytes / config.force_drain_bytes_per_s

    throughput = np.zeros(windows)
    latency_values: list[float] = []
    latency_weights: list[float] = []

    for idx in range(windows):
        t_mid = (idx + 0.5) * window
        components = result.components.value_at(min(t_mid, result.duration))
        secondary_components = 0.0
        if secondary_result is not None:
            secondary_components = secondary_result.components.value_at(
                min(t_mid, secondary_result.duration)
            )
        pages = pages_per_query(
            workload, components, device, config.entry_bytes, secondary_components
        )
        write_fraction = min(io_rates[idx] / config.bandwidth_bytes_per_s, 1.0)
        capacity = device.read_pages_per_s * (
            1.0 - device.contention * write_fraction
        )
        if not config.force_at_end_only:
            capacity *= 1.0 - device.regular_force_overhead
            blocked = min(
                io_rates[idx] * window / config.force_drain_bytes_per_s, window
            )
        else:
            blocked = min(force_blocked[idx], window)
        available = max(window - blocked, 0.0) / window
        rate = capacity * available / pages
        # A small client pool cannot exceed threads / service_time; the
        # per-op round trip dominates point lookups, page streaming
        # dominates scans.
        service = device.op_latency_s + pages / device.read_pages_per_s
        rate = min(rate, workload.threads / service)
        throughput[idx] = rate

        base_latency = device.op_latency_s + pages / max(capacity, 1e-9)
        done = rate * window
        if done <= 0:
            continue
        if blocked > 0:
            spike = (
                force_sizes.get(idx, regular_spike)
                if config.force_at_end_only
                else regular_spike
            )
            affected = done * min(blocked / window, 1.0)
            latency_values.append(base_latency + spike)
            latency_weights.append(max(affected, 1e-9))
            done -= affected
        latency_values.append(base_latency)
        latency_weights.append(max(done, 1e-9))

    return QueryOutcome(
        workload=workload,
        window=window,
        throughput=throughput,
        latency_values=np.asarray(latency_values),
        latency_weights=np.asarray(latency_weights),
    )
