"""Exporting simulation results for downstream analysis.

Figures in the paper are plots; users reproducing them with their own
tooling (matplotlib, gnuplot, a spreadsheet) need the underlying series.
:func:`result_to_dict` flattens a :class:`~repro.sim.result.SimResult`
into plain JSON-serializable data — throughput series, component-count
change points, stall intervals, merge log, latency percentiles — and
:func:`save_result` / :func:`load_result_dict` round-trip it through a
file. The export is lossy by design (the full fluid curves are sampled),
but carries everything the paper's figures plot.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .result import SimResult

#: Export format version, bumped on breaking layout changes.
FORMAT_VERSION = 1


def result_to_dict(
    result: SimResult,
    latency_levels: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9),
    curve_samples: int = 2000,
) -> dict:
    """Flatten a simulation result to JSON-serializable data."""
    if curve_samples < 2:
        raise ConfigurationError("need at least two curve samples")
    grid = np.linspace(0.0, result.duration, curve_samples)
    payload: dict = {
        "format_version": FORMAT_VERSION,
        "duration": result.duration,
        "window": result.window,
        "closed_system": result.closed_system,
        "total_writes": result.total_writes,
        "final_queue_length": result.final_queue_length,
        "throughput_series": result.throughput_series().tolist(),
        "io_activity_series": result.io_activity.rate_values(
            until=result.duration
        ).tolist(),
        "component_points": [
            {"time": point.time, "value": point.value}
            for point in result.components.points()
        ],
        "stall_intervals": [list(pair) for pair in result.stall_intervals],
        "merge_log": [
            {
                "completed_at": record.completed_at,
                "started_at": record.started_at,
                "input_count": record.input_count,
                "level0_inputs": record.level0_inputs,
                "input_bytes": record.input_bytes,
                "output_bytes": record.output_bytes,
                "target_level": record.target_level,
                "reason": record.reason,
            }
            for record in result.merge_log
        ],
        "arrival_curve": {
            "time": grid.tolist(),
            "total": result.arrivals.value_at(grid).tolist(),
        },
        "departure_curve": {
            "time": grid.tolist(),
            "total": result.departures.value_at(grid).tolist(),
        },
    }
    if not result.closed_system and result.total_writes > 0:
        payload["write_latency_percentiles"] = {
            str(level): value
            for level, value in result.write_latency_profile(
                latency_levels
            ).items()
        }
    return payload


def save_result(result: SimResult, path: str | Path, **kwargs) -> None:
    """Write a result export as JSON."""
    payload = result_to_dict(result, **kwargs)
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )


def load_result_dict(path: str | Path) -> dict:
    """Read back a result export, validating the format version."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported export format version {version!r}"
        )
    return payload
