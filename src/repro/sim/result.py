"""Result objects produced by simulation runs.

A :class:`SimResult` bundles every trace the paper's figures draw on:
instantaneous write throughput (windowed), per-write latencies (from the
fluid FIFO curves), processing-latency samples, the disk-component count
over time, merge logs, stall intervals, and the I/O activity trace the
query model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..metrics import (
    CumulativeCurve,
    StepSeries,
    WindowedCounter,
    fifo_latencies,
    percentile_profile,
    weighted_percentile_profile,
)


@dataclass(frozen=True)
class MergeRecord:
    """One completed merge: when, what, and how much I/O it cost."""

    completed_at: float
    started_at: float
    input_count: int
    level0_inputs: int
    input_bytes: float
    output_bytes: float
    target_level: int
    reason: str


@dataclass(frozen=True)
class ForceEvent:
    """A disk force: ``bytes`` flushed from the OS queue at ``time``."""

    time: float
    bytes: float


@dataclass
class SimResult:
    """Everything a two-phase experiment needs from one simulation run."""

    duration: float
    window: float
    arrivals: CumulativeCurve
    departures: CumulativeCurve
    throughput: WindowedCounter
    components: StepSeries
    io_activity: WindowedCounter
    merge_log: list[MergeRecord] = field(default_factory=list)
    force_events: list[ForceEvent] = field(default_factory=list)
    stall_intervals: list[tuple[float, float]] = field(default_factory=list)
    processing_values: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    processing_weights: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    closed_system: bool = False
    final_queue_length: float = 0.0

    @property
    def total_writes(self) -> float:
        """Writes processed over the whole run."""
        return self.departures.final_total

    @property
    def stall_time(self) -> float:
        """Total simulated seconds during which writes were stalled."""
        return sum(end - start for start, end in self.stall_intervals)

    def measured_throughput(self, exclude_initial: float = 0.0) -> float:
        """Average write throughput, excluding a warm-up prefix.

        The paper excludes the initial 20 minutes of its 2-hour testing
        phase because the freshly loaded tree has too few components;
        ``exclude_initial`` reproduces that.
        """
        if not 0.0 <= exclude_initial < self.duration:
            raise ConfigurationError("warm-up exclusion outside the run")
        done_at_cut = float(self.departures.value_at(np.asarray([exclude_initial]))[0])
        span = self.duration - exclude_initial
        return (self.total_writes - done_at_cut) / span

    def throughput_series(self) -> np.ndarray:
        """Per-window instantaneous write throughput (entries/s)."""
        return self.throughput.rate_values(until=self.duration)

    def write_latencies(
        self, max_samples: int = 200_000, skip_fraction: float = 0.0
    ) -> np.ndarray:
        """Per-write latencies (queuing + processing) for open-system runs.

        Raises for closed-system runs: the paper's whole point is that the
        closed model cannot characterize write latencies (Section 3.2).
        """
        if self.closed_system:
            raise ConfigurationError(
                "write latencies are undefined under the closed system model; "
                "run the open-system running phase instead (Section 3.2)"
            )
        return fifo_latencies(
            self.arrivals,
            self.departures,
            max_samples=max_samples,
            skip_fraction=skip_fraction,
        )

    def write_latency_profile(
        self, levels: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)
    ) -> dict[float, float]:
        """Percentile write latencies (Figure 6c, 9c, 10c style)."""
        return percentile_profile(self.write_latencies(), levels)

    def processing_latency_profile(
        self, levels: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)
    ) -> dict[float, float]:
        """Percentile *processing* latencies from weighted fluid samples.

        The processing latency is the time the LSM-tree itself spends on a
        write once submitted — ``1 / rate`` during smooth operation, the
        stall length for the write caught at a stall's head (Section 4.2's
        distinction between processing and write latency).
        """
        if self.processing_values.size == 0:
            raise ConfigurationError("no processing samples recorded")
        return weighted_percentile_profile(
            self.processing_values, self.processing_weights, levels
        )

    def queue_length_series(self, step: float | None = None) -> np.ndarray:
        """Write-queue length sampled on a uniform grid.

        The queue is the vertical gap between the arrival and departure
        curves; ``step`` defaults to the analysis window. Closed-system
        runs have no queue by construction (arrivals materialize on
        demand) and return zeros.
        """
        step = step or self.window
        grid = np.arange(0.0, self.duration, step)
        if self.closed_system:
            return np.zeros(grid.shape)
        gap = self.arrivals.value_at(grid) - self.departures.value_at(grid)
        return np.clip(gap, 0.0, None)

    def stall_count(self) -> int:
        """Number of distinct stall intervals."""
        return len(self.stall_intervals)

    def longest_stall(self) -> float:
        """Duration of the longest stall (0 when none occurred)."""
        if not self.stall_intervals:
            return 0.0
        return max(end - start for start, end in self.stall_intervals)
