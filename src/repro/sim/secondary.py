"""Secondary-index maintenance simulation (Section 7).

An LSM dataset is a primary index plus ``K`` secondary indexes, each an
LSM-tree of its own; all trees share the memory budget and the I/O
bandwidth budget, and each is merged independently by its own scheduler
instance. Two maintenance strategies:

* **Lazy** — ingestion appends the new entry to the primary and to each
  secondary index; no lookups, no cleanup. The dataset behaves like a set
  of parallel LSM-trees; a write has completed when the slowest tree has
  absorbed it.
* **Eager** — ingestion first point-looks-up the old record in the
  primary index to generate anti-matter for the secondaries, then writes
  one primary entry and *two* entries per secondary (new + anti-matter).
  The point lookups become the ingestion bottleneck, and since lookup
  throughput varies with the primary tree's component count (and with
  background merge I/O), the processing rate fluctuates — which is why
  Figure 26 shows larger write latencies, and why Figure 27 shows the
  utilization must be dropped well below 95% to tame them.

The trees ingest the same stream at the same rate, so the bandwidth
budget is split statically in proportion to the bytes each tree writes
per ingested record; both secondaries are identical, so one
representative secondary tree is simulated and the dataset's departure
curve is the slower of (primary, secondary) at each write index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core import model
from ..core.components import MergeDescriptor, TreeSnapshot, UidAllocator
from ..core.policies import TieringPolicy
from ..core.schedulers import (
    ComponentConstraint,
    GlobalComponentConstraint,
    WriteControl,
)
from ..errors import ConfigurationError
from ..metrics import percentile_profile
from ..workloads import (
    ArrivalProcess,
    ClosedArrivals,
    ConstantArrivals,
    KeyspaceModel,
    UniformKeys,
)
from .bootstrap import loaded_tiering_tree
from .config import SimConfig, bench_config
from .lsm import SimulatedLSMTree
from .queries import QueryDevice, pages_per_query, QueryWorkload
from .result import SimResult


@dataclass(frozen=True)
class SecondarySetup:
    """Configuration of the Section 7 dataset.

    The paper builds two secondary indexes; primary records are 1 KB and
    secondary entries (secondary key + primary key) are small. All three
    trees use tiering with size ratio 3. Eager maintenance uses 8 writer
    threads for its point lookups; lazy needs only one.
    """

    strategy: str = "lazy"
    secondary_count: int = 2
    secondary_entry_bytes: float = 128.0
    size_ratio: int = 3
    lookup_threads: int = 8
    scale: float = 128.0

    def __post_init__(self) -> None:
        if self.strategy not in ("lazy", "eager"):
            raise ConfigurationError(f"unknown strategy {self.strategy!r}")
        if self.secondary_count < 1:
            raise ConfigurationError("need at least one secondary index")
        if self.secondary_entry_bytes <= 0:
            raise ConfigurationError("secondary entries must have positive size")

    @property
    def entries_per_write_secondary(self) -> float:
        """Secondary-index entries produced per ingested record."""
        return 2.0 if self.strategy == "eager" else 1.0

    def bandwidth_shares(self, config: SimConfig) -> tuple[float, float]:
        """(primary, per-secondary) share of the I/O budget."""
        primary_bytes = config.entry_bytes
        secondary_bytes = (
            self.secondary_entry_bytes * self.entries_per_write_secondary
        )
        total = primary_bytes + self.secondary_count * secondary_bytes
        return primary_bytes / total, secondary_bytes / total


class EagerLookupControl(WriteControl):
    """Write control modelling eager maintenance's point-lookup ceiling.

    The admissible ingestion rate is the point-lookup throughput of the
    primary tree: ``threads`` concurrent lookups against a device whose
    read capacity is depressed by ongoing merge I/O, each lookup paying a
    Bloom false-positive page per extra component. More components or
    heavier merge activity → slower lookups → slower ingestion: the
    variance source the paper identifies.
    """

    name = "eager-lookup"

    def __init__(
        self,
        config: SimConfig,
        device: QueryDevice,
        threads: int = 8,
        variance_amplitude: float = 0.25,
        variance_period: float = 600.0,
    ) -> None:
        if threads < 1:
            raise ConfigurationError("need at least one lookup thread")
        if not 0.0 <= variance_amplitude < 1.0:
            raise ConfigurationError("variance amplitude must be in [0, 1)")
        if variance_period <= 0:
            raise ConfigurationError("variance period must be positive")
        self._config = config
        self._device = device
        self._threads = threads
        self._workload = QueryWorkload.point_lookup(threads)
        self._amplitude = variance_amplitude
        self._period = variance_period

    def admission_rate(
        self,
        tree: TreeSnapshot,
        constraint: ComponentConstraint,
        merges: Sequence[MergeDescriptor] = (),
        allocation: Mapping[int, float] | None = None,
        now: float = 0.0,
    ) -> float:
        if constraint.is_violated(tree):
            return 0.0
        pages = pages_per_query(
            self._workload, float(tree.count()), self._device, self._config.entry_bytes
        )
        merge_rate = sum(allocation.values()) if allocation else 0.0
        write_fraction = min(merge_rate / self._config.bandwidth_bytes_per_s, 1.0)
        capacity = self._device.read_pages_per_s * (
            1.0 - self._device.contention * write_fraction
        )
        # The "inherent variance of the point lookup throughput" (Section
        # 7.2): measured lookup rates on a shared SSD swing with ongoing
        # disk activity on timescales of minutes. The fluid model would
        # otherwise average this away, so it is reproduced as a
        # deterministic slow modulation of the lookup capacity — variance
        # with a reproducible phase rather than a random seed.
        swing = 0.5 * (1.0 + math.sin(2.0 * math.pi * now / self._period))
        service = self._device.op_latency_s + pages / self._device.read_pages_per_s
        rate = min(capacity / pages, self._threads / service)
        return rate * (1.0 - self._amplitude * swing)


@dataclass
class DatasetResult:
    """Results of one dataset-level run (primary + representative
    secondary), with combined FIFO latencies."""

    primary: SimResult
    secondary: SimResult
    closed_system: bool

    def measured_throughput(self, exclude_initial: float = 0.0) -> float:
        """Dataset ingest throughput = the slower tree's throughput."""
        return min(
            self.primary.measured_throughput(exclude_initial),
            self.secondary.measured_throughput(exclude_initial),
        )

    def throughput_series(self) -> np.ndarray:
        """Per-window ingest throughput (slower tree per window)."""
        p = self.primary.throughput_series()
        s = self.secondary.throughput_series()
        size = min(p.size, s.size)
        return np.minimum(p[:size], s[:size])

    def write_latencies(self, max_samples: int = 100_000) -> np.ndarray:
        """Per-write latency: a write completes when every tree took it."""
        if self.closed_system:
            raise ConfigurationError(
                "write latencies are undefined for the closed system model"
            )
        completed = min(
            self.primary.departures.final_total,
            self.secondary.departures.final_total,
            self.primary.arrivals.final_total,
        )
        if completed <= 0:
            raise ConfigurationError("no writes completed")
        indices = np.linspace(0, completed, num=max_samples, endpoint=False)
        arrive = self.primary.arrivals.inverse(indices)
        depart_p = self.primary.departures.inverse(indices)
        depart_s = self.secondary.departures.inverse(indices)
        return np.maximum(np.maximum(depart_p, depart_s) - arrive, 0.0)

    def write_latency_profile(
        self, levels: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)
    ) -> dict[float, float]:
        """Percentile write latencies across the dataset."""
        return percentile_profile(self.write_latencies(), levels)

    def stall_count(self) -> int:
        """Stalls across both simulated trees."""
        return self.primary.stall_count() + self.secondary.stall_count()


def _tree_for(
    setup: SecondarySetup,
    config: SimConfig,
    entry_bytes: float,
    bandwidth: float,
    arrival_multiplier: float,
    arrivals: ArrivalProcess,
    scheduler_name: str,
    control: WriteControl | None,
) -> SimulatedLSMTree:
    from ..harness.spec import make_scheduler  # local import: avoid cycle

    tree_config = config.with_(
        entry_bytes=entry_bytes,
        bandwidth_bytes_per_s=bandwidth,
    )
    levels = model.levels_for_tiering(
        tree_config.total_keys, tree_config.memory_component_entries, setup.size_ratio
    )
    policy = TieringPolicy(setup.size_ratio, levels)
    keyspace = KeyspaceModel(UniformKeys(tree_config.total_keys))
    components = loaded_tiering_tree(policy, keyspace, tree_config, UidAllocator())
    if isinstance(arrivals, ConstantArrivals):
        arrivals = ConstantArrivals(arrivals.rate * arrival_multiplier)
    return SimulatedLSMTree(
        config=tree_config,
        policy=policy,
        scheduler=make_scheduler(scheduler_name, policy, tree_config),
        constraint=GlobalComponentConstraint(
            model.default_component_limit(policy.expected_components())
        ),
        keyspace=keyspace,
        arrivals=arrivals,
        write_control=control,
        initial_components=components,
    )


def simulate_dataset(
    setup: SecondarySetup,
    arrivals: ArrivalProcess,
    scheduler: str = "fair",
    duration: float = 7200.0,
    config: SimConfig | None = None,
) -> DatasetResult:
    """Run the primary and a representative secondary tree.

    The primary tree carries the eager strategy's lookup-bound write
    control; secondary trees are pure write targets (entries per write
    scaled into their bandwidth share and arrival rate).
    """
    if config is None:
        config = bench_config(setup.scale)
    primary_share, secondary_share = setup.bandwidth_shares(config)
    budget = config.bandwidth_bytes_per_s
    control: WriteControl | None = None
    if setup.strategy == "eager":
        device = QueryDevice.for_config(config)
        control = EagerLookupControl(config, device, setup.lookup_threads)
        # The lookup throttle varies continuously with time; refresh the
        # admission rate between events so the modulation is observed.
        config = config.with_(reallocation_interval=15.0)
    primary = _tree_for(
        setup,
        config,
        entry_bytes=config.entry_bytes,
        bandwidth=budget * primary_share,
        arrival_multiplier=1.0,
        arrivals=arrivals,
        scheduler_name=scheduler,
        control=control,
    )
    secondary = _tree_for(
        setup,
        config,
        entry_bytes=setup.secondary_entry_bytes,
        bandwidth=budget * secondary_share,
        arrival_multiplier=setup.entries_per_write_secondary,
        arrivals=arrivals,
        scheduler_name=scheduler,
        control=None,
    )
    closed = math.isinf(arrivals.rate_at(0.0))
    return DatasetResult(
        primary=primary.run(duration),
        secondary=secondary.run(duration),
        closed_system=closed,
    )


def dataset_two_phase(
    setup: SecondarySetup,
    scheduler: str = "fair",
    utilization: float = 0.95,
    testing_duration: float = 7200.0,
    running_duration: float = 7200.0,
    warmup: float = 1200.0,
) -> tuple[float, DatasetResult]:
    """Two-phase evaluation at the dataset level.

    Returns ``(max_throughput, running_result)``: the testing phase uses
    the closed model and the fair scheduler; the running phase uses
    constant arrivals at ``utilization`` times the measured maximum.
    """
    testing = simulate_dataset(
        setup, ClosedArrivals(), scheduler="fair", duration=testing_duration
    )
    max_throughput = testing.measured_throughput(warmup)
    running = simulate_dataset(
        setup,
        ConstantArrivals(utilization * max_throughput),
        scheduler=scheduler,
        duration=running_duration,
    )
    return max_throughput, running
