"""A stall-aware network KV service over :mod:`repro.engine`.

The serving tier the paper's write-interaction taxonomy matters for in
production: an asyncio TCP front-end (:class:`KVServer`) speaking a
length-prefixed JSON protocol, a pooled retrying client
(:class:`KVClient`), an admission controller mapping engine
backpressure onto the paper's stop / limit / gradual interaction modes,
and a closed/open-loop load generator implementing the two-phase
methodology over the wire.
"""

from .admission import (
    ADMIT,
    DELAY,
    MODES,
    REJECT,
    AdmissionController,
    AdmissionDecision,
    GradualAdmission,
    LimitAdmission,
    StopAdmission,
    build_admission,
)
from .client import ClientMetrics, KVClient
from .loadgen import (
    LoadResult,
    TwoPhaseNetworkResult,
    closed_loop,
    open_loop,
    two_phase,
)
from .service import KVServer, ServerMetrics, serve

__all__ = [
    "ADMIT",
    "DELAY",
    "REJECT",
    "MODES",
    "AdmissionController",
    "AdmissionDecision",
    "ClientMetrics",
    "GradualAdmission",
    "KVClient",
    "KVServer",
    "LimitAdmission",
    "LoadResult",
    "ServerMetrics",
    "StopAdmission",
    "TwoPhaseNetworkResult",
    "build_admission",
    "closed_loop",
    "open_loop",
    "serve",
    "two_phase",
]
