"""A stall-aware network KV service over :mod:`repro.engine`.

The serving tier the paper's write-interaction taxonomy matters for in
production: an asyncio TCP front-end (:class:`KVServer`) speaking a
length-prefixed JSON protocol, a pooled retrying client
(:class:`KVClient`), an admission controller mapping engine
backpressure onto the paper's stop / limit / gradual interaction modes,
and a closed/open-loop load generator implementing the two-phase
methodology over the wire.

The error types a caller of this package must be able to catch —
:class:`~repro.errors.RequestFailedError` for non-transient server
errors, :class:`~repro.errors.RetriesExhaustedError` when the retry
budget runs out, and their bases — are re-exported here so client code
does not have to know they live in :mod:`repro.errors`.
"""

from ..errors import (
    ProtocolError,
    RequestFailedError,
    RetriesExhaustedError,
    ServerError,
)
from .admission import (
    ADMIT,
    DELAY,
    MODES,
    REJECT,
    AdmissionController,
    AdmissionDecision,
    GradualAdmission,
    LimitAdmission,
    StopAdmission,
    build_admission,
)
from .client import ClientMetrics, KVClient
from .loadgen import (
    DISTRIBUTIONS,
    LoadResult,
    TwoPhaseNetworkResult,
    classify_error,
    closed_loop,
    open_loop,
    two_phase,
)
from .service import (
    DEFAULT_WRITE_DEADLINE,
    FramedServer,
    KVServer,
    ServerMetrics,
    serve,
)

__all__ = [
    "ADMIT",
    "DELAY",
    "DEFAULT_WRITE_DEADLINE",
    "DISTRIBUTIONS",
    "MODES",
    "REJECT",
    "AdmissionController",
    "AdmissionDecision",
    "ClientMetrics",
    "FramedServer",
    "GradualAdmission",
    "KVClient",
    "KVServer",
    "LimitAdmission",
    "LoadResult",
    "ProtocolError",
    "RequestFailedError",
    "RetriesExhaustedError",
    "ServerError",
    "ServerMetrics",
    "StopAdmission",
    "TwoPhaseNetworkResult",
    "build_admission",
    "classify_error",
    "closed_loop",
    "open_loop",
    "serve",
    "two_phase",
]
