"""The wire protocol for the network KV service.

Every message — request or response — is one *frame*: a 4-byte
big-endian payload length followed by a UTF-8 JSON object. Binary keys
and values travel base64-encoded inside the JSON. The verb set mirrors
the storage engine's public API plus service plumbing::

    PUT   {"op": "PUT", "key": b64, "value": b64}
    GET   {"op": "GET", "key": b64}
    DEL   {"op": "DEL", "key": b64}
    BATCH {"op": "BATCH", "ops": [["put", b64, b64], ["del", b64]]}
    SCAN  {"op": "SCAN", "lo": b64|null, "hi": b64|null, "limit": int|null}
    STATS {"op": "STATS"}
    PING  {"op": "PING"}
    METRICS {"op": "METRICS"}
    EVENTS  {"op": "EVENTS", "since": int, "limit": int|null}

``METRICS`` returns the server's structured metrics-registry snapshot
(:mod:`repro.obs`) — structured rather than pre-rendered text so a
cluster router can merge per-shard histograms bucket-by-bucket before
anything computes a percentile. ``EVENTS`` pages through the lifecycle
event ring with a ``since`` sequence-number cursor.

Responses carry ``{"ok": true, ...}`` on success or
``{"ok": false, "code": ..., "error": ..., "retry_after": ...}`` on
failure. The ``STALLED`` code is the serving-layer face of the paper's
write-stall taxonomy: the admission controller rejected (stop mode) or
timed out (gradual mode) a write, and ``retry_after`` tells the client
how long to back off before retrying.
"""

from __future__ import annotations

import base64
import json
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter

from ..errors import ProtocolError

#: Frames larger than this are rejected before allocation (DoS guard and
#: sanity check; a 16 MiB batch is far beyond any sane request here).
MAX_FRAME_BYTES = 16 * 2**20

_LENGTH = struct.Struct(">I")

#: Every verb the service understands.
VERBS = frozenset(
    {"PUT", "GET", "DEL", "BATCH", "SCAN", "STATS", "PING",
     "METRICS", "EVENTS", "REPLICATE", "PROMOTE", "FETCH_RANGE"}
)

#: Error codes a response may carry.
CODE_STALLED = "STALLED"
CODE_BAD_REQUEST = "BAD_REQUEST"
CODE_CLOSED = "CLOSED"
CODE_INTERNAL = "INTERNAL"
#: A cluster shard is unavailable (its circuit breaker is open); the
#: ``retry_after`` hint carries the breaker's remaining cooldown.
CODE_SHARD_DOWN = "SHARD_DOWN"
#: A replication verb hit a server in the wrong role (REPLICATE sent to
#: a leader, client write sent to a follower).
CODE_NOT_LEADER = "NOT_LEADER"
#: A shipped frame does not start at the follower's applied offset; the
#: response carries the expected cursor so the shipper can rewind.
CODE_REPLICA_GAP = "REPLICA_GAP"
#: A replication frame carried an epoch older than the follower's — a
#: deposed leader is still shipping and must stop (fencing).
CODE_STALE_EPOCH = "STALE_EPOCH"
#: The read intersects a quarantined (corrupt) run and cannot be
#: answered soundly. Not retryable — the data stays unavailable until a
#: repair rebuilds the run. ``min_key``/``max_key`` (hex) bound the
#: affected range; keys outside it keep serving.
CODE_DATA_CORRUPT = "DATA_CORRUPT"


def b64encode(raw: bytes) -> str:
    """Binary-to-wire encoding for keys and values."""
    return base64.b64encode(raw).decode("ascii")


def b64decode(text: str) -> bytes:
    """Wire-to-binary decoding; raises :class:`ProtocolError` on junk."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, AttributeError) as error:
        raise ProtocolError(f"invalid base64 field: {error}") from error


def jsonify(obj):
    """Recursively convert raw ``bytes`` fields to base64 text.

    Responses that crossed a binary shard connection (a GET value, say)
    carry raw bytes; before such a dict can be written to a JSON
    connection — or embedded in a binary JSON envelope — every bytes
    leaf must take the base64 form the JSON wire documents.
    """
    if isinstance(obj, (bytes, bytearray)):
        return b64encode(bytes(obj))
    if isinstance(obj, dict):
        return {field: jsonify(value) for field, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(value) for value in obj]
    return obj


def jsonify_request(message: dict) -> dict:
    """Rewrite a binary-shaped request into the JSON wire shape.

    The cluster router forwards whatever message its own connection
    decoded; when a binary-origin request (raw bytes key/value, BATCH
    ops as tuples) must travel on to a JSON-wire backend, this restores
    the documented base64/list forms. JSON-shaped fields pass through
    untouched.
    """
    out = {
        field: value
        for field, value in message.items()
        if not field.startswith("_")
    }
    for field in ("key", "value"):
        if isinstance(out.get(field), (bytes, bytearray)):
            out[field] = b64encode(bytes(out[field]))
    ops = out.get("ops")
    if out.get("op") == "BATCH" and isinstance(ops, list):
        encoded = []
        for entry in ops:
            if isinstance(entry, tuple) and len(entry) == 2:
                key, value = entry
                key = b64encode(bytes(key))
                if value is None:
                    encoded.append(["del", key])
                else:
                    encoded.append(["put", key, b64encode(bytes(value))])
            else:
                encoded.append(entry)
        out["ops"] = encoded
    return out


# -- framing -------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(frame: bytes) -> dict:
    """Parse one complete frame back into a message (tests/tools)."""
    if len(frame) < _LENGTH.size:
        raise ProtocolError("frame shorter than its length prefix")
    (length,) = _LENGTH.unpack_from(frame)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared payload of {length} bytes too large")
    payload = frame[_LENGTH.size : _LENGTH.size + length]
    if len(payload) < length:
        raise ProtocolError("truncated frame")
    trailing = len(frame) - _LENGTH.size - length
    if trailing:
        # Silently dropping extra bytes would desynchronize a stream
        # parser built on this — surface the framing bug instead.
        raise ProtocolError(
            f"{trailing} trailing bytes after the declared payload"
        )
    return _parse_payload(payload)


def _parse_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame payload is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


async def read_message(
    reader: StreamReader, first: bytes = b""
) -> dict | None:
    """Read one framed message; ``None`` on clean EOF.

    ``first`` carries bytes already consumed from the stream (the
    server peeks one byte to negotiate the wire encoding); they count
    as the start of this frame's length prefix.
    """
    try:
        header = first + await reader.readexactly(_LENGTH.size - len(first))
    except IncompleteReadError as error:
        if not error.partial and not first:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-frame") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared payload of {length} bytes too large")
    try:
        payload = await reader.readexactly(length)
    except IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return _parse_payload(payload)


async def write_message(writer: StreamWriter, message: dict) -> None:
    """Frame and send one message."""
    writer.write(encode_frame(message))
    await writer.drain()


# -- request builders ----------------------------------------------------


def put_request(key: bytes, value: bytes) -> dict:
    return {"op": "PUT", "key": b64encode(key), "value": b64encode(value)}


def get_request(key: bytes) -> dict:
    return {"op": "GET", "key": b64encode(key)}


def delete_request(key: bytes) -> dict:
    return {"op": "DEL", "key": b64encode(key)}


def batch_request(ops: list[tuple[bytes, bytes | None]]) -> dict:
    encoded = []
    for key, value in ops:
        if value is None:
            encoded.append(["del", b64encode(key)])
        else:
            encoded.append(["put", b64encode(key), b64encode(value)])
    return {"op": "BATCH", "ops": encoded}


def scan_request(
    lo: bytes | None = None,
    hi: bytes | None = None,
    limit: int | None = None,
) -> dict:
    return {
        "op": "SCAN",
        "lo": None if lo is None else b64encode(lo),
        "hi": None if hi is None else b64encode(hi),
        "limit": limit,
    }


def stats_request() -> dict:
    return {"op": "STATS"}


def ping_request() -> dict:
    return {"op": "PING"}


def metrics_request() -> dict:
    return {"op": "METRICS"}


def events_request(since: int = -1, limit: int | None = None) -> dict:
    return {"op": "EVENTS", "since": since, "limit": limit}


def replicate_request(
    epoch: int,
    generation: int,
    start: int,
    end: int,
    ops: list[tuple[bytes, bytes | None]],
    reset: bool = False,
) -> dict:
    """One shipped WAL frame (or, with ``reset``, a full resync snapshot).

    ``start``/``end`` are the frame's byte span in the leader WAL at
    ``generation``; the follower acks by advancing its cursor to ``end``.
    A reset frame replaces the follower's entire state with ``ops`` and
    re-bases its cursor at ``(generation, end)``.
    """
    return {
        "op": "REPLICATE",
        "epoch": epoch,
        "generation": generation,
        "start": start,
        "end": end,
        "ops": _encode_ops(ops),
        "reset": reset,
    }


def replicate_probe_request(epoch: int = -1) -> dict:
    """Status-only REPLICATE: reports the follower's cursor, ships nothing.

    Promotion scoring uses this to find the most-caught-up follower; an
    ``epoch`` of -1 means "observe only, do not fence".
    """
    return {"op": "REPLICATE", "epoch": epoch, "probe": True}


def promote_request(
    epoch: int, peers: list[tuple[str, int]] | None = None
) -> dict:
    """Tell a follower to become the shard leader at ``epoch``.

    ``peers`` lists the surviving followers' addresses; the new leader
    re-attaches them with a reset-snapshot resync so the replica group
    keeps its redundancy after a failover.
    """
    message = {"op": "PROMOTE", "epoch": epoch}
    if peers:
        message["peers"] = [[host, port] for host, port in peers]
    return message


def fetch_range_request(
    epoch: int, lo: bytes | None, hi: bytes | None
) -> dict:
    """Ask a follower for its live view of ``[lo, hi]`` (inclusive).

    The repair verb: a leader rebuilding a quarantined run fetches the
    run's key bounds from its most-caught-up follower. ``epoch`` fences
    the fetch — a follower that has adopted a newer epoch answers
    ``STALE_EPOCH``, so a deposed leader can never repair from (and then
    serve over) a group that moved on. The response carries the
    follower's ack cursor alongside the items, letting the leader verify
    the view is at least as fresh as its own WAL position at fetch time.
    """
    return {
        "op": "FETCH_RANGE",
        "epoch": epoch,
        "lo": None if lo is None else b64encode(lo),
        "hi": None if hi is None else b64encode(hi),
    }


def fetch_range_payload(
    message: dict,
) -> tuple[int, bytes | None, bytes | None]:
    """Decode a FETCH_RANGE request's epoch and inclusive bounds."""
    epoch = message.get("epoch", -1)
    if not isinstance(epoch, int) or isinstance(epoch, bool):
        raise ProtocolError("fetch_range epoch must be an integer")
    lo, hi = message.get("lo"), message.get("hi")
    return (
        epoch,
        None if lo is None else b64decode(lo),
        None if hi is None else b64decode(hi),
    )


def _encode_ops(ops: list[tuple[bytes, bytes | None]]) -> list:
    encoded = []
    for key, value in ops:
        if value is None:
            encoded.append(["del", b64encode(key)])
        else:
            encoded.append(["put", b64encode(key), b64encode(value)])
    return encoded


def replicate_payload(message: dict) -> dict:
    """Decode a REPLICATE request into a plain dict.

    Returns ``{"epoch", "probe"}`` for probes, or ``{"epoch",
    "generation", "start", "end", "ops", "reset", "probe"}`` for shipped
    frames. Unlike BATCH, an empty ops list is legal — a reset snapshot
    of an empty store ships no operations.
    """
    epoch = message.get("epoch", -1)
    if not isinstance(epoch, int) or isinstance(epoch, bool):
        raise ProtocolError("replicate epoch must be an integer")
    if message.get("probe"):
        return {"epoch": epoch, "probe": True}
    fields = {}
    for field in ("generation", "start", "end"):
        value = message.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ProtocolError(
                f"replicate {field} must be a non-negative integer"
            )
        fields[field] = value
    raw = message.get("ops")
    if not isinstance(raw, list):
        raise ProtocolError("replicate needs an ops list")
    ops: list[tuple[bytes, bytes | None]] = []
    for entry in raw:
        if not isinstance(entry, list) or not entry:
            raise ProtocolError("malformed replicate entry")
        kind = entry[0]
        if kind == "put" and len(entry) == 3:
            ops.append((b64decode(entry[1]), b64decode(entry[2])))
        elif kind == "del" and len(entry) == 2:
            ops.append((b64decode(entry[1]), None))
        else:
            raise ProtocolError(f"malformed replicate entry {entry!r}")
    return {
        "epoch": epoch,
        "probe": False,
        "ops": ops,
        "reset": bool(message.get("reset", False)),
        **fields,
    }


def promote_payload(message: dict) -> tuple[int, list[tuple[str, int]]]:
    """Decode a PROMOTE request's epoch and surviving-peer list."""
    epoch = message.get("epoch")
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        raise ProtocolError("promote epoch must be a non-negative integer")
    raw = message.get("peers", [])
    if not isinstance(raw, list):
        raise ProtocolError("promote peers must be a list")
    peers: list[tuple[str, int]] = []
    for entry in raw:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], int)
        ):
            raise ProtocolError(f"malformed promote peer {entry!r}")
        peers.append((entry[0], entry[1]))
    return epoch, peers


def events_cursor(message: dict) -> tuple[int, int | None]:
    """Decode an EVENTS request's ``since`` cursor and ``limit``."""
    since, limit = message.get("since", -1), message.get("limit")
    if not isinstance(since, int) or isinstance(since, bool):
        raise ProtocolError("events cursor must be an integer")
    if limit is not None and (
        not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
    ):
        raise ProtocolError("events limit must be a non-negative integer")
    return since, limit


# -- response builders ---------------------------------------------------


def ok_response(**fields) -> dict:
    response = {"ok": True}
    response.update(fields)
    return response


def error_response(
    code: str, message: str, retry_after: float | None = None
) -> dict:
    response = {"ok": False, "code": code, "error": message}
    if retry_after is not None:
        response["retry_after"] = retry_after
    return response


# -- server-side request accessors ---------------------------------------


def request_verb(message: dict) -> str:
    """Extract and validate the verb of an incoming request."""
    verb = message.get("op")
    if not isinstance(verb, str) or verb.upper() not in VERBS:
        raise ProtocolError(f"unknown op {verb!r}")
    return verb.upper()


def request_key(message: dict) -> bytes:
    """Extract the (required) key field of a request.

    Binary-wire requests carry raw bytes; JSON requests carry base64.
    """
    key = message.get("key")
    if isinstance(key, (bytes, bytearray)):
        return bytes(key)
    if not isinstance(key, str):
        raise ProtocolError("request is missing its key")
    return b64decode(key)


def request_value(message: dict) -> bytes:
    """Extract the (required) value field of a request.

    Binary-wire requests carry raw bytes; JSON requests carry base64.
    """
    value = message.get("value")
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if not isinstance(value, str):
        raise ProtocolError("request is missing its value")
    return b64decode(value)


def batch_ops(message: dict) -> list[tuple[bytes, bytes | None]]:
    """Decode a BATCH request's operation list.

    Accepts the JSON shape (``["put", b64, b64]`` / ``["del", b64]``
    lists) and the binary decoder's already-raw tuples
    (``(key_bytes, value_bytes | None)``).
    """
    raw = message.get("ops")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("BATCH needs a non-empty ops list")
    ops: list[tuple[bytes, bytes | None]] = []
    for entry in raw:
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], (bytes, bytearray))
            and (
                entry[1] is None
                or isinstance(entry[1], (bytes, bytearray))
            )
        ):
            key, value = entry
            ops.append(
                (bytes(key), None if value is None else bytes(value))
            )
            continue
        if not isinstance(entry, list) or not entry:
            raise ProtocolError("malformed batch entry")
        kind = entry[0]
        if kind == "put" and len(entry) == 3:
            ops.append((b64decode(entry[1]), b64decode(entry[2])))
        elif kind == "del" and len(entry) == 2:
            ops.append((b64decode(entry[1]), None))
        else:
            raise ProtocolError(f"malformed batch entry {entry!r}")
    return ops


def scan_bounds(
    message: dict,
) -> tuple[bytes | None, bytes | None, int | None]:
    """Decode a SCAN request's bounds and limit."""
    lo, hi, limit = message.get("lo"), message.get("hi"), message.get("limit")
    if limit is not None and (not isinstance(limit, int) or limit < 0):
        raise ProtocolError("scan limit must be a non-negative integer")
    return (
        None if lo is None else b64decode(lo),
        None if hi is None else b64decode(hi),
        limit,
    )
