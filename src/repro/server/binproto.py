"""The binary wire encoding for the network KV service.

JSON framing (:mod:`repro.server.protocol`) spends most of a hot
request's CPU on base64 and ``json.dumps``. This module carries the
same verbs in a length-prefixed binary encoding: raw key/value bytes,
one opcode byte, no text anywhere on PUT/GET/DEL/BATCH. Everything
else (SCAN, STATS, replication, errors) rides inside an embedded JSON
envelope, so the slow verbs keep full fidelity without a parallel
schema.

Negotiation: a client that wants the binary wire sends one magic byte
(:data:`MAGIC`) immediately after connecting, before its first frame.
JSON frames always start with the high byte of a 4-byte big-endian
length prefix, and lengths are capped at 16 MiB — so that first byte is
at most ``0x01`` and can never be mistaken for the magic. A server that
does not read a magic byte first serves the connection as legacy JSON;
old clients keep working unmodified.

Frames reuse the JSON wire's shape — 4-byte big-endian payload length,
then the payload — but the payload is::

    request  := opcode:u8 body
    response := status:u8 body

    OP_PUT   (0x01)  klen:u32 key vlen:u32 value
    OP_GET   (0x02)  klen:u32 key
    OP_DEL   (0x03)  klen:u32 key
    OP_BATCH (0x04)  count:u32 { kind:u8 klen:u32 key [vlen:u32 value] }*
    OP_JSON  (0x00)  utf-8 JSON object (any other verb)

    ST_OK    (0x00)  empty           (PUT/DEL/BATCH success)
    ST_VALUE (0x01)  vlen:u32 value  (GET hit)
    ST_MISS  (0x02)  empty           (GET miss)
    ST_JSON  (0x03)  utf-8 JSON object (everything else, incl. errors)

All integers are big-endian, matching the frame length prefix.
"""

from __future__ import annotations

import json
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter

from ..errors import ProtocolError
from . import protocol

#: The negotiation byte a binary-wire client sends before its first
#: frame. Any value >= 0x02 is unambiguous against a JSON length prefix
#: (frames are capped at 16 MiB, so a JSON frame's first byte is 0x00
#: or 0x01).
MAGIC = 0xB1
MAGIC_BYTE = bytes([MAGIC])

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_LENGTH = struct.Struct(">I")

OP_JSON = 0x00
OP_PUT = 0x01
OP_GET = 0x02
OP_DEL = 0x03
OP_BATCH = 0x04

ST_OK = 0x00
ST_VALUE = 0x01
ST_MISS = 0x02
ST_JSON = 0x03

_KIND_PUT = 1
_KIND_DEL = 2

#: Key marking a decoded message as binary-wire so the dispatch layer
#: answers with raw bytes instead of base64.
WIRE_KEY = "_wire_binary"


def _as_bytes(field) -> bytes:
    """Accept raw bytes (binary-origin) or base64 text (JSON-origin).

    The cluster router forwards whatever message shape its own client
    sent, so a binary shard connection must encode both.
    """
    if isinstance(field, (bytes, bytearray)):
        return bytes(field)
    if isinstance(field, str):
        return protocol.b64decode(field)
    raise ProtocolError(f"expected a bytes or base64 field, got {field!r}")


def _iter_ops(raw) -> list[tuple[int, bytes, bytes]]:
    """Normalize BATCH ops from either wire shape into (kind, key, value)."""
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("BATCH needs a non-empty ops list")
    ops = []
    for entry in raw:
        if isinstance(entry, tuple) and len(entry) == 2:
            key, value = entry
            if value is None:
                ops.append((_KIND_DEL, _as_bytes(key), b""))
            else:
                ops.append((_KIND_PUT, _as_bytes(key), _as_bytes(value)))
        elif isinstance(entry, list) and entry and entry[0] == "put":
            ops.append((_KIND_PUT, _as_bytes(entry[1]), _as_bytes(entry[2])))
        elif isinstance(entry, list) and entry and entry[0] == "del":
            ops.append((_KIND_DEL, _as_bytes(entry[1]), b""))
        else:
            raise ProtocolError(f"malformed batch entry {entry!r}")
    return ops


# -- requests ------------------------------------------------------------


def encode_request(message: dict) -> bytes:
    """Encode one request message into a binary frame payload.

    Hot verbs get the compact opcode forms; every other verb is wrapped
    as an OP_JSON envelope (the message must then be JSON-serializable,
    which protocol.py's request builders guarantee).
    """
    verb = message.get("op")
    if verb == "PUT":
        key = _as_bytes(message["key"])
        value = _as_bytes(message["value"])
        return b"".join(
            (
                _U8.pack(OP_PUT),
                _U32.pack(len(key)),
                key,
                _U32.pack(len(value)),
                value,
            )
        )
    if verb == "GET" or verb == "DEL":
        key = _as_bytes(message["key"])
        opcode = OP_GET if verb == "GET" else OP_DEL
        return _U8.pack(opcode) + _U32.pack(len(key)) + key
    if verb == "BATCH":
        parts = [_U8.pack(OP_BATCH)]
        ops = _iter_ops(message.get("ops"))
        parts.append(_U32.pack(len(ops)))
        for kind, key, value in ops:
            parts.append(_U8.pack(kind))
            parts.append(_U32.pack(len(key)))
            parts.append(key)
            if kind == _KIND_PUT:
                parts.append(_U32.pack(len(value)))
                parts.append(value)
        return b"".join(parts)
    clean = {
        field: value
        for field, value in message.items()
        if not field.startswith("_")
    }
    payload = json.dumps(clean, separators=(",", ":")).encode("utf-8")
    return _U8.pack(OP_JSON) + payload


class _Cursor:
    """Bounds-checked sequential reads over one frame payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ProtocolError("binary frame truncated mid-field")
        piece = self.data[self.pos : end]
        self.pos = end
        return piece

    def u32(self) -> int:
        return _U32.unpack(self.take(_U32.size))[0]

    def u8(self) -> int:
        return self.take(1)[0]

    def done(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after the "
                "binary request body"
            )


def decode_request(payload: bytes) -> dict:
    """Decode one binary request payload into a message dict.

    Hot-verb messages carry raw ``bytes`` keys/values (and BATCH ops as
    ``(key, value-or-None)`` tuples) — the shapes protocol.py's request
    accessors also understand — plus a :data:`WIRE_KEY` marker so the
    server responds in kind.
    """
    if not payload:
        raise ProtocolError("empty binary request")
    opcode = payload[0]
    cursor = _Cursor(payload, 1)
    if opcode == OP_JSON:
        try:
            message = json.loads(payload[1:].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(
                f"binary JSON envelope is not JSON: {error}"
            ) from error
        if not isinstance(message, dict):
            raise ProtocolError("binary JSON envelope must be an object")
        message[WIRE_KEY] = True
        return message
    if opcode == OP_PUT:
        key = cursor.take(cursor.u32())
        value = cursor.take(cursor.u32())
        cursor.done()
        return {"op": "PUT", "key": key, "value": value, WIRE_KEY: True}
    if opcode in (OP_GET, OP_DEL):
        key = cursor.take(cursor.u32())
        cursor.done()
        verb = "GET" if opcode == OP_GET else "DEL"
        return {"op": verb, "key": key, WIRE_KEY: True}
    if opcode == OP_BATCH:
        count = cursor.u32()
        ops: list[tuple[bytes, bytes | None]] = []
        for _ in range(count):
            kind = cursor.u8()
            key = cursor.take(cursor.u32())
            if kind == _KIND_PUT:
                ops.append((key, cursor.take(cursor.u32())))
            elif kind == _KIND_DEL:
                ops.append((key, None))
            else:
                raise ProtocolError(f"unknown batch op kind {kind}")
        cursor.done()
        return {"op": "BATCH", "ops": ops, WIRE_KEY: True}
    raise ProtocolError(f"unknown binary opcode {opcode:#04x}")


# -- responses -----------------------------------------------------------


def encode_response(response: dict) -> bytes:
    """Encode one response dict into a binary frame payload.

    GET responses whose value is raw bytes (or a ``found``-keyed miss)
    take the compact forms; plain write acks collapse to ST_OK; every
    other shape — errors included — travels as an ST_JSON envelope so
    no field is ever dropped.
    """
    if response.get("ok") is True:
        if "value" in response:
            value = response["value"]
            if value is None:
                return _U8.pack(ST_MISS)
            if isinstance(value, (bytes, bytearray)):
                return (
                    _U8.pack(ST_VALUE)
                    + _U32.pack(len(value))
                    + bytes(value)
                )
        elif all(field == "ok" for field in response):
            return _U8.pack(ST_OK)
    payload = json.dumps(
        protocol.jsonify(response), separators=(",", ":")
    ).encode("utf-8")
    return _U8.pack(ST_JSON) + payload


def decode_response(payload: bytes) -> dict:
    """Decode one binary response payload into a client-facing dict."""
    if not payload:
        raise ProtocolError("empty binary response")
    status = payload[0]
    if status == ST_OK:
        return {"ok": True}
    if status == ST_MISS:
        return {"ok": True, "value": None}
    if status == ST_VALUE:
        cursor = _Cursor(payload, 1)
        value = cursor.take(cursor.u32())
        cursor.done()
        return {"ok": True, "value": value}
    if status == ST_JSON:
        try:
            message = json.loads(payload[1:].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(
                f"binary JSON envelope is not JSON: {error}"
            ) from error
        if not isinstance(message, dict):
            raise ProtocolError("binary JSON envelope must be an object")
        return message
    raise ProtocolError(f"unknown binary response status {status:#04x}")


# -- framing -------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """Length-prefix one binary payload (same framing as the JSON wire)."""
    if len(payload) > protocol.MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{protocol.MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: StreamReader) -> bytes | None:
    """Read one length-prefixed payload; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from error
    (length,) = _LENGTH.unpack(header)
    if length > protocol.MAX_FRAME_BYTES:
        raise ProtocolError(f"declared payload of {length} bytes too large")
    try:
        return await reader.readexactly(length)
    except IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error


async def write_request(writer: StreamWriter, message: dict) -> None:
    """Frame and send one request on a binary connection."""
    writer.write(encode_frame(encode_request(message)))
    await writer.drain()


async def write_response(writer: StreamWriter, response: dict) -> None:
    """Frame and send one response on a binary connection."""
    writer.write(encode_frame(encode_response(response)))
    await writer.drain()
