"""Network load generation: the two-phase methodology over the wire.

The paper evaluates write stalls with a two-phase experiment: a *testing
phase* measures the maximum sustainable write throughput with a closed
system, then a *running phase* replays an open (constant-arrival) load
at a fraction of that maximum — 95% throughout the paper — and reports
percentile latencies. This module reproduces that methodology against a
live :class:`~repro.server.KVServer` with real TCP clients:

* :func:`closed_loop` — N concurrent clients issuing back-to-back
  writes; measures service capacity (the testing phase), and doubles as
  an overload generator for admission-mode experiments.
* :func:`open_loop` — ops dispatched on a fixed arrival schedule;
  latency is measured from *scheduled arrival* to completion, so queueing
  delay during stalls shows up in the tail exactly as the paper's
  Figure 1 latency spikes do.
* :func:`two_phase` — the full pipeline: closed-loop testing phase, then
  an open-loop running phase at ``utilization`` times the measured max.

Latencies include client-side retries and backoff: they are what a real
application would observe, which is the entire point of the serving
layer's admission control.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    ConfigurationError,
    ProtocolError,
    RequestFailedError,
    RetriesExhaustedError,
    ServerError,
)
from ..metrics.percentiles import percentile_profile
from ..workloads.distributions import ZipfianKeys
from .client import KVClient

#: Key-popularity distributions the generators understand.
DISTRIBUTIONS = ("uniform", "zipf")

#: Zipf samples drawn per numpy call; amortises vectorised sampling.
_ZIPF_BATCH = 512


def classify_error(error: BaseException) -> str:
    """Bucket one failed operation's exception for :class:`LoadResult`.

    Protocol rejections keep their wire code (lower-cased:
    ``shard_down``, ``stalled``, ``not_leader``, ``data_corrupt``, ...);
    transport failures split into ``timeout`` / ``connection_reset`` /
    ``connection_refused`` / ``connection_error`` / ``protocol``. A
    retry-exhausted wrapper is classified by its *last* cause — that is
    the failure mode the client actually gave up on. Keeping
    ``data_corrupt`` as its own bucket matters operationally: it is an
    *integrity* refusal (the answer would require a quarantined run),
    not a transport blip, and it is not retryable.
    """
    if isinstance(error, RetriesExhaustedError):
        if error.last_error is None:
            return "retries_exhausted"
        return classify_error(error.last_error)
    if isinstance(error, RequestFailedError):
        return error.code.lower()
    if isinstance(error, (asyncio.TimeoutError, TimeoutError)):
        return "timeout"
    if isinstance(error, ConnectionResetError):
        return "connection_reset"
    if isinstance(error, ConnectionRefusedError):
        return "connection_refused"
    if isinstance(error, ProtocolError):
        return "protocol"
    if isinstance(error, (ConnectionError, OSError)):
        return "connection_error"
    return "other"


@dataclass
class LoadResult:
    """Outcome of one load-generation run."""

    label: str
    op_count: int
    error_count: int
    duration_seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    retries: int = 0
    stalled_responses: int = 0
    #: Failed ops bucketed by :func:`classify_error`; values sum to
    #: ``error_count``.
    errors_by_type: dict[str, int] = field(default_factory=dict)

    @property
    def data_corrupt_count(self) -> int:
        """Ops refused with ``DATA_CORRUPT`` — integrity failures, kept
        separate from transport errors so a corruption event cannot hide
        inside a generic error count."""
        return self.errors_by_type.get("data_corrupt", 0)

    @property
    def throughput(self) -> float:
        """Completed operations per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.op_count / self.duration_seconds

    def latency_profile(
        self, levels: tuple[float, ...] = (50.0, 90.0, 99.0)
    ) -> dict[float, float]:
        """Percentile client latencies in seconds.

        Raises :class:`ValueError` when no operation completed — a run
        where everything errored has no latency distribution, and a
        silent 0.0 would read as an impossibly fast server.
        """
        if not self.latencies:
            raise ValueError(
                f"{self.label}: no latency samples — all "
                f"{self.error_count} operations failed or the run was "
                "empty; there is no percentile to report"
            )
        return percentile_profile(self.latencies, levels)

    def percentile(self, q: float) -> float:
        """One percentile of the observed client latencies."""
        return self.latency_profile((q,))[q]

    @property
    def max_latency(self) -> float:
        """Worst observed client latency."""
        return max(self.latencies) if self.latencies else 0.0

    def summary(self) -> str:
        """One-line human-readable result."""
        if not self.latencies:
            return f"{self.label}: no completed operations"
        profile = self.latency_profile()
        return (
            f"{self.label}: {self.op_count} ops in "
            f"{self.duration_seconds:.2f}s ({self.throughput:.0f} op/s), "
            f"latency p50 {profile[50.0] * 1e3:.1f}ms "
            f"p99 {profile[99.0] * 1e3:.1f}ms "
            f"max {self.max_latency * 1e3:.1f}ms, "
            f"{self.retries} retries, {self.error_count} errors"
            + (
                " ("
                + ", ".join(
                    f"{kind}: {count}"
                    for kind, count in sorted(
                        self.errors_by_type.items(),
                        key=lambda item: (-item[1], item[0]),
                    )
                )
                + ")"
                if self.errors_by_type
                else ""
            )
        )


def _operation_stream(
    seed: int,
    keyspace: int,
    value_bytes: int,
    distribution: str = "uniform",
    theta: float = 0.99,
):
    """Deterministic (key, value) generator shared by both loop shapes.

    ``uniform`` draws keys uniformly from the keyspace; ``zipf`` draws
    them from the YCSB scrambled-Zipfian popularity model
    (:class:`~repro.workloads.distributions.ZipfianKeys`), which is what
    makes a *hot shard* emerge when the stream is routed through a
    cluster's hash ring.
    """
    if distribution not in DISTRIBUTIONS:
        raise ConfigurationError(
            f"unknown distribution {distribution!r}; "
            f"choose from {DISTRIBUTIONS}"
        )
    rng = random.Random(seed)
    if distribution == "zipf":
        zipf = ZipfianKeys(keyspace, theta=theta)
        np_rng = np.random.default_rng(seed)
        while True:
            for index in zipf.sample(np_rng, _ZIPF_BATCH).tolist():
                key = f"key-{index:010d}".encode("ascii")
                yield key, rng.randbytes(value_bytes)
    else:
        while True:
            key = f"key-{rng.randrange(keyspace):010d}".encode("ascii")
            yield key, rng.randbytes(value_bytes)


async def closed_loop(
    host: str,
    port: int,
    clients: int = 4,
    ops_per_client: int = 200,
    value_bytes: int = 100,
    keyspace: int = 4096,
    seed: int = 0,
    label: str = "closed-loop",
    client_options: dict | None = None,
    distribution: str = "uniform",
    theta: float = 0.99,
) -> LoadResult:
    """Closed system: each client issues its next write on completion."""
    if clients < 1 or ops_per_client < 1:
        raise ConfigurationError("need at least one client and one op")
    options = dict(client_options or {})
    options.setdefault("pool_size", clients)
    options.setdefault("jitter_seed", seed)
    latencies: list[float] = []
    errors = 0
    errors_by_type: dict[str, int] = {}

    async with KVClient(host, port, **options) as client:

        async def worker(worker_id: int) -> None:
            nonlocal errors
            stream = _operation_stream(
                seed + worker_id,
                keyspace,
                value_bytes,
                distribution=distribution,
                theta=theta,
            )
            for _ in range(ops_per_client):
                key, value = next(stream)
                started = time.monotonic()
                try:
                    await client.put(key, value)
                except ServerError as error:
                    errors += 1
                    kind = classify_error(error)
                    errors_by_type[kind] = (
                        errors_by_type.get(kind, 0) + 1
                    )
                    continue
                latencies.append(time.monotonic() - started)

        started = time.monotonic()
        await asyncio.gather(
            *(worker(worker_id) for worker_id in range(clients))
        )
        duration = time.monotonic() - started
        return LoadResult(
            label=label,
            op_count=len(latencies),
            error_count=errors,
            duration_seconds=duration,
            latencies=latencies,
            retries=client.telemetry.retries_total,
            stalled_responses=client.telemetry.stalled_responses,
            errors_by_type=errors_by_type,
        )


async def open_loop(
    host: str,
    port: int,
    rate_ops_per_s: float,
    total_ops: int,
    value_bytes: int = 100,
    keyspace: int = 4096,
    seed: int = 0,
    label: str = "open-loop",
    client_options: dict | None = None,
    distribution: str = "uniform",
    theta: float = 0.99,
) -> LoadResult:
    """Open system: ops arrive on a fixed schedule regardless of progress.

    Latency counts from each op's *scheduled* arrival, so an op delayed
    behind a stall accrues its queueing time — the open-system latency
    the paper's running phase reports.
    """
    if rate_ops_per_s <= 0 or total_ops < 1:
        raise ConfigurationError("need a positive rate and op count")
    options = dict(client_options or {})
    options.setdefault("pool_size", 8)
    options.setdefault("jitter_seed", seed)
    latencies: list[float] = []
    errors = 0
    errors_by_type: dict[str, int] = {}

    async with KVClient(host, port, **options) as client:
        stream = _operation_stream(
            seed, keyspace, value_bytes, distribution=distribution, theta=theta
        )
        operations = [next(stream) for _ in range(total_ops)]
        epoch = time.monotonic()

        async def fire(index: int, key: bytes, value: bytes) -> None:
            nonlocal errors
            scheduled = epoch + index / rate_ops_per_s
            pause = scheduled - time.monotonic()
            if pause > 0:
                await asyncio.sleep(pause)
            try:
                await client.put(key, value)
            except ServerError as error:
                errors += 1
                kind = classify_error(error)
                errors_by_type[kind] = errors_by_type.get(kind, 0) + 1
                return
            # Latency is anchored to the *scheduled* arrival, never to
            # when the send actually happened: an op held up behind a
            # slow predecessor (pool exhausted, server stalled) accrues
            # that queueing time. Measuring from the send instant would
            # be coordinated omission — the stall would erase its own
            # evidence from the tail.
            latencies.append(time.monotonic() - scheduled)

        await asyncio.gather(
            *(
                fire(index, key, value)
                for index, (key, value) in enumerate(operations)
            )
        )
        duration = time.monotonic() - epoch
        return LoadResult(
            label=label,
            op_count=len(latencies),
            error_count=errors,
            duration_seconds=duration,
            latencies=latencies,
            retries=client.telemetry.retries_total,
            stalled_responses=client.telemetry.stalled_responses,
            errors_by_type=errors_by_type,
        )


@dataclass
class TwoPhaseNetworkResult:
    """Testing phase + running phase, measured over the wire."""

    testing: LoadResult
    running: LoadResult
    max_throughput: float
    arrival_rate: float
    utilization: float

    def summary(self) -> str:
        """Multi-line report mirroring the simulator harness output."""
        return "\n".join(
            [
                f"testing phase:  max write throughput = "
                f"{self.max_throughput:.1f} ops/s",
                f"running phase:  arrivals = {self.arrival_rate:.1f} ops/s "
                f"({self.utilization:.0%} utilization)",
                "  " + self.testing.summary(),
                "  " + self.running.summary(),
            ]
        )


async def two_phase(
    host: str,
    port: int,
    utilization: float = 0.95,
    clients: int = 4,
    testing_ops_per_client: int = 200,
    running_ops: int = 500,
    value_bytes: int = 100,
    keyspace: int = 4096,
    seed: int = 0,
    client_options: dict | None = None,
    distribution: str = "uniform",
    theta: float = 0.99,
) -> TwoPhaseNetworkResult:
    """The paper's methodology end-to-end over TCP."""
    if not 0.0 < utilization <= 1.0:
        raise ConfigurationError("utilization must be in (0, 1]")
    testing = await closed_loop(
        host,
        port,
        clients=clients,
        ops_per_client=testing_ops_per_client,
        value_bytes=value_bytes,
        keyspace=keyspace,
        seed=seed,
        label="testing",
        client_options=client_options,
        distribution=distribution,
        theta=theta,
    )
    arrival_rate = max(1.0, testing.throughput * utilization)
    running = await open_loop(
        host,
        port,
        rate_ops_per_s=arrival_rate,
        total_ops=running_ops,
        value_bytes=value_bytes,
        keyspace=keyspace,
        seed=seed + 1,
        label="running",
        client_options=client_options,
        distribution=distribution,
        theta=theta,
    )
    return TwoPhaseNetworkResult(
        testing=testing,
        running=running,
        max_throughput=testing.throughput,
        arrival_rate=arrival_rate,
        utilization=utilization,
    )
