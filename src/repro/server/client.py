"""Async client for the network KV service.

:class:`KVClient` keeps a small pool of TCP connections, applies a
per-request timeout, and retries transient failures — connection drops,
timeouts, and ``STALLED`` / ``SHARD_DOWN`` rejections — with *full
jitter* exponential backoff: each pause is drawn uniformly from
``[0, backoff_delay(attempt)]``, which de-synchronizes retry storms when
many clients (for example the cluster router's per-shard pools) bounce
off the same stalled backend together. When the server supplies a
``retry_after`` hint (the stop admission mode's RETRY_AFTER, or a
circuit breaker's cooldown), the hint is a floor under the jittered
pause. The sleep function and the jitter RNG seed are injectable, and
``jitter=False`` restores the deterministic schedule, so tests can
verify backoff without wall-clock waits.

Because the store is a last-writer-wins KV map, every verb here is
idempotent and therefore safe to retry blindly.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

from ..errors import (
    ConfigurationError,
    ProtocolError,
    RequestFailedError,
    RetriesExhaustedError,
)
from . import binproto, protocol

#: Error codes worth retrying: both mean "try again shortly" — the
#: backend is stalled, or its shard's circuit breaker is cooling down.
_RETRYABLE_CODES = frozenset(
    {protocol.CODE_STALLED, protocol.CODE_SHARD_DOWN}
)


@dataclass
class ClientMetrics:
    """Cumulative client-side counters (retry visibility for loadgen).

    Exposed as :attr:`KVClient.telemetry` — the name ``metrics`` belongs
    to the :meth:`KVClient.metrics` passthrough verb, which fetches the
    *server's* metrics registry snapshot.
    """

    requests_total: int = 0
    retries_total: int = 0
    stalled_responses: int = 0
    shard_down_responses: int = 0
    timeouts: int = 0
    reconnects: int = 0
    backoff_seconds_total: float = 0.0


class _Connection:
    """One pooled TCP connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.broken = False

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except Exception:  # noqa: BLE001 — already tearing down
            pass


class KVClient:
    """Pooled, retrying async client for :class:`~repro.server.KVServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 2,
        timeout: float = 5.0,
        max_retries: int = 4,
        backoff_base: float = 0.05,
        backoff_multiplier: float = 2.0,
        backoff_max: float = 1.0,
        sleep=None,
        jitter: bool = True,
        jitter_seed: int | None = None,
        wire: str = "json",
    ) -> None:
        if pool_size < 1:
            raise ConfigurationError("pool needs at least one connection")
        if wire not in ("binary", "json"):
            raise ConfigurationError(f"unknown wire mode {wire!r}")
        if timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if backoff_base <= 0 or backoff_multiplier < 1 or backoff_max <= 0:
            raise ConfigurationError("invalid backoff schedule")
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._timeout = timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_multiplier = backoff_multiplier
        self._backoff_max = backoff_max
        self._sleep = sleep if sleep is not None else asyncio.sleep
        # "binary" announces the magic byte on every new connection and
        # speaks the opcode wire (raw keys/values, no base64/JSON on the
        # hot verbs); "json" (the default) is the legacy framing every
        # server version understands.
        self._wire_binary = wire == "binary"
        self._jitter = jitter
        self._jitter_rng = random.Random(jitter_seed)
        self._idle: asyncio.Queue[_Connection] = asyncio.Queue()
        self._open_count = 0
        self._closed = False
        self.telemetry = ClientMetrics()

    # -- lifecycle -------------------------------------------------------

    async def __aenter__(self) -> "KVClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        while not self._idle.empty():
            connection = self._idle.get_nowait()
            self._open_count -= 1
            await connection.close()

    # -- pooling ---------------------------------------------------------

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise ConfigurationError("client is closed")
        if not self._idle.empty():
            return self._idle.get_nowait()
        if self._open_count < self._pool_size:
            self._open_count += 1
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self._host, self._port),
                    self._timeout,
                )
            except BaseException:
                self._open_count -= 1
                raise
            if self._wire_binary:
                # Negotiate once per connection; the byte rides ahead of
                # the first frame (no extra round trip).
                writer.write(binproto.MAGIC_BYTE)
            return _Connection(reader, writer)
        return await self._idle.get()

    async def _release(self, connection: _Connection) -> None:
        if connection.broken or self._closed:
            self._open_count -= 1
            await connection.close()
        else:
            self._idle.put_nowait(connection)

    # -- request machinery -----------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """Backoff *cap* before retry number ``attempt`` (1-based).

        With jitter enabled the actual pause is drawn uniformly from
        ``[0, backoff_delay(attempt)]`` (AWS-style full jitter); with
        ``jitter=False`` the cap is the pause.
        """
        delay = self._backoff_base * (
            self._backoff_multiplier ** (attempt - 1)
        )
        return min(delay, self._backoff_max)

    def _pause_before(self, attempt: int, last_error) -> float:
        pause = self.backoff_delay(attempt)
        if self._jitter:
            pause = self._jitter_rng.uniform(0.0, pause)
        if isinstance(last_error, RequestFailedError):
            # A server hint is a floor, never shortened by jitter.
            pause = max(pause, last_error.retry_after)
        return pause

    async def _round_trip(self, message: dict) -> dict:
        connection = await self._acquire()
        try:
            if self._wire_binary:
                await binproto.write_request(connection.writer, message)
                payload = await asyncio.wait_for(
                    binproto.read_frame(connection.reader), self._timeout
                )
                response = (
                    None if payload is None
                    else binproto.decode_response(payload)
                )
            else:
                # Forwarded messages (the cluster router re-sends what
                # its own connection decoded) may carry binary-shaped
                # fields; restore the JSON wire forms first.
                await protocol.write_message(
                    connection.writer, protocol.jsonify_request(message)
                )
                response = await asyncio.wait_for(
                    protocol.read_message(connection.reader), self._timeout
                )
            if response is None:
                # Clean EOF mid-request: the connection is dead and must
                # not go back into the pool looking healthy.
                raise ProtocolError(
                    "server closed the connection mid-request"
                )
        except BaseException:
            connection.broken = True
            raise
        finally:
            await self._release(connection)
        return response

    async def request(self, message: dict) -> dict:
        """Send one request, retrying transient failures with backoff."""
        self.telemetry.requests_total += 1
        last_error: Exception | None = None
        for attempt in range(self._max_retries + 1):
            if attempt > 0:
                self.telemetry.retries_total += 1
                pause = self._pause_before(attempt, last_error)
                self.telemetry.backoff_seconds_total += pause
                await self._sleep(pause)
            try:
                response = await self._round_trip(message)
            except asyncio.TimeoutError as error:
                self.telemetry.timeouts += 1
                last_error = error
                continue
            except (ConnectionError, ProtocolError, OSError) as error:
                self.telemetry.reconnects += 1
                last_error = error
                continue
            if response.get("ok"):
                return response
            code = response.get("code", protocol.CODE_INTERNAL)
            failure = RequestFailedError(
                code,
                response.get("error", "request failed"),
                retry_after=float(response.get("retry_after", 0.0)),
            )
            if code not in _RETRYABLE_CODES:
                raise failure  # non-transient: surface immediately
            if code == protocol.CODE_STALLED:
                self.telemetry.stalled_responses += 1
            else:
                self.telemetry.shard_down_responses += 1
            last_error = failure
        raise RetriesExhaustedError(
            f"request failed after {self._max_retries + 1} attempts: "
            f"{last_error}",
            last_error=last_error,
        )

    # -- verbs -----------------------------------------------------------

    async def put(self, key: bytes, value: bytes) -> None:
        """Insert or update one key."""
        if self._wire_binary:
            # Raw bytes straight into the opcode encoder — the whole
            # point of the binary wire is skipping base64 + json here.
            await self.request({"op": "PUT", "key": key, "value": value})
            return
        await self.request(protocol.put_request(key, value))

    async def get(self, key: bytes) -> bytes | None:
        """Point lookup; None when absent."""
        if self._wire_binary:
            response = await self.request({"op": "GET", "key": key})
        else:
            response = await self.request(protocol.get_request(key))
        value = response.get("value")
        if value is None or isinstance(value, bytes):
            return value
        return protocol.b64decode(value)

    async def delete(self, key: bytes) -> None:
        """Delete one key."""
        if self._wire_binary:
            await self.request({"op": "DEL", "key": key})
            return
        await self.request(protocol.delete_request(key))

    async def batch(self, ops: list[tuple[bytes, bytes | None]]) -> int:
        """Atomically apply a list of (key, value-or-None) operations."""
        if self._wire_binary:
            message = {
                "op": "BATCH",
                "ops": [tuple(op) for op in ops],
            }
            response = await self.request(message)
        else:
            response = await self.request(protocol.batch_request(ops))
        return int(response.get("count", len(ops)))

    async def scan(
        self,
        lo: bytes | None = None,
        hi: bytes | None = None,
        limit: int | None = None,
    ) -> list[tuple[bytes, bytes]]:
        """Ordered range scan over ``[lo, hi)``."""
        response = await self.request(protocol.scan_request(lo, hi, limit))
        return [
            (protocol.b64decode(key), protocol.b64decode(value))
            for key, value in response.get("items", [])
        ]

    async def scan_detailed(
        self,
        lo: bytes | None = None,
        hi: bytes | None = None,
        limit: int | None = None,
    ) -> dict:
        """Range scan keeping the response metadata.

        Returns ``{"items": [(key, value), ...], "degraded": bool,
        "missing_shards": [int, ...], "replica_read": bool,
        "staleness_bytes": int}``. Against a single server the scan is
        never degraded; against a cluster router a dead shard yields a
        partial result with ``degraded=True`` and the shard(s) that did
        not answer. A router serving scans from followers
        (``read_from_replica``) sets ``replica_read=True`` and reports
        the worst follower lag it observed as ``staleness_bytes`` —
        unshipped leader-WAL bytes, a lower bound on how far behind the
        returned view may be.
        """
        response = await self.request(protocol.scan_request(lo, hi, limit))
        return {
            "items": [
                (protocol.b64decode(key), protocol.b64decode(value))
                for key, value in response.get("items", [])
            ],
            "degraded": bool(response.get("degraded", False)),
            "missing_shards": [
                int(shard) for shard in response.get("missing_shards", [])
            ],
            "replica_read": bool(response.get("replica_read", False)),
            "staleness_bytes": int(response.get("staleness_bytes", 0)),
            # Only a follower answering directly reports its cursor; a
            # router aggregate has no single cursor to report.
            "replica_epoch": response.get("replica_epoch"),
            "applied_offset": response.get("applied_offset"),
        }

    async def stats(self) -> dict:
        """Counters as the STATS verb returns them.

        A single server answers with ``engine`` + ``server`` sections; a
        cluster router answers with ``cluster`` + ``router``. Both pass
        through untouched, plus ``admission_mode``.
        """
        response = await self.request(protocol.stats_request())
        return {
            key: value for key, value in response.items() if key != "ok"
        }

    async def metrics(self) -> dict:
        """The server's structured metrics-registry snapshot.

        Against a single server this is one tier's registry; against a
        cluster router it is the rolled-up view with per-shard series
        labelled ``shard="N"`` and histograms merged bucket-by-bucket.
        Render locally with :func:`repro.obs.render_prometheus`.
        """
        response = await self.request(protocol.metrics_request())
        return dict(response.get("metrics", {}))

    async def events(
        self, since: int = -1, limit: int | None = None
    ) -> dict:
        """Lifecycle events with ``seq > since`` from the server's ring.

        Returns ``{"events": [event dict, ...], "dropped": int}``; feed
        the last event's ``seq`` back as ``since`` to tail incrementally.
        """
        response = await self.request(protocol.events_request(since, limit))
        return {
            "events": list(response.get("events", [])),
            "dropped": int(response.get("dropped", 0)),
        }

    async def ping(self) -> bool:
        """Liveness probe."""
        response = await self.request(protocol.ping_request())
        return bool(response.get("pong"))

    # -- replication verbs (shipper / promotion plumbing) ----------------

    @staticmethod
    def _replica_ack(response: dict) -> dict:
        return {
            "epoch": int(response.get("epoch", 0)),
            "generation": int(response.get("generation", 0)),
            "applied": int(response.get("applied", 0)),
            "role": str(response.get("role", "follower")),
            "quarantined": int(response.get("quarantined", 0)),
        }

    async def replicate(self, message: dict) -> dict:
        """Ship one REPLICATE frame (see ``protocol.replicate_request``).

        Returns the follower's ack cursor ``{"epoch", "generation",
        "applied", "role"}``. Gap/fencing rejections (``REPLICA_GAP``,
        ``STALE_EPOCH``) are not retryable and surface immediately as
        :class:`~repro.errors.RequestFailedError`.
        """
        return self._replica_ack(await self.request(message))

    async def replica_status(self, epoch: int = -1) -> dict:
        """Probe a replica's cursor without shipping anything."""
        return self._replica_ack(
            await self.request(protocol.replicate_probe_request(epoch))
        )

    async def promote(
        self, epoch: int, peers: list[tuple[str, int]] | None = None
    ) -> dict:
        """Promote a follower to shard leader at ``epoch``, handing it
        the surviving peers to re-attach as its own followers."""
        return self._replica_ack(
            await self.request(protocol.promote_request(epoch, peers))
        )

    async def fetch_range(
        self, epoch: int, lo: bytes, hi: bytes
    ) -> dict:
        """Fetch a follower's view of the *inclusive* key range [lo, hi].

        The repair path's verb: a leader with a quarantined run asks a
        follower for that run's key range so it can rebuild the file
        from replicated data. Returns ``{"items": [(key, value), ...]}``
        plus the follower's ack cursor (``epoch``/``generation``/
        ``applied``) — the caller must check the cursor is at least as
        fresh as its own shipped position before trusting the snapshot.
        Fencing rejections (``STALE_EPOCH``) surface immediately.
        """
        response = await self.request(
            protocol.fetch_range_request(epoch, lo, hi)
        )
        ack = self._replica_ack(response)
        ack["items"] = [
            (protocol.b64decode(key), protocol.b64decode(value))
            for key, value in response.get("items", [])
        ]
        return ack
