"""Stall-aware admission control for the serving tier.

The paper's taxonomy of how merges interact with writes (stop vs
graceful slow-down, Sections 2.3 and 4) reappears at the network layer
as three admission modes over the engine's backpressure signals
(:class:`~repro.engine.StoreStats.write_stalled`, ``write_headroom``,
``sealed_memtables``):

``stop``
    The engine's own interaction mode, surfaced to clients: while the
    component constraint is violated, writes are rejected outright with
    a ``RETRY_AFTER`` hint. Cheap and honest, but clients eat the full
    stall in their tail latency (the paper's Figure 1 shape).

``limit``
    A constant-rate cap: admitted write bytes pass through a token
    bucket (reusing :class:`repro.engine.RateLimiter`), so ingestion can
    never outrun the configured merge bandwidth and the constraint is
    rarely hit. The bLSM/RocksDB "delayed write rate" knob.

``gradual``
    bLSM-style spring-and-gear slow-down: each write is delayed in
    proportion to how much of the component budget is consumed
    (``1 - write_headroom``), ramping smoothly from zero delay at the
    threshold to ``max_delay`` as the tree approaches a hard stall —
    and a stalled engine is *absorbed* (the service pauses and retries
    internally) rather than propagated as a rejection.

Controllers are pure decision functions over a stats snapshot — no
sleeping, no I/O — so the asyncio service applies delays with
``await asyncio.sleep`` and tests can drive them with synthetic stats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..engine.datastore import StoreStats
from ..engine.ratelimiter import RateLimiter
from ..errors import ConfigurationError

#: Decision actions.
ADMIT = "admit"
DELAY = "delay"
REJECT = "reject"

#: The admission mode names exposed on the CLI.
MODES = ("none", "stop", "limit", "gradual")


@dataclass(frozen=True)
class AdmissionDecision:
    """What to do with one write: admit now, admit after a pause, or
    bounce it back to the client with a backoff hint."""

    action: str
    delay_seconds: float = 0.0
    retry_after: float = 0.0
    reason: str = ""


_ADMIT_NOW = AdmissionDecision(ADMIT)


class AdmissionController:
    """Base controller: admit everything (mode ``none``).

    ``absorbs_stalls`` tells the service what to do when the engine
    itself raises :class:`~repro.errors.WriteStalledError` despite
    admission: graceful controllers pause ``stall_pause`` seconds and
    retry internally (slow down, don't stop); the rest surface the
    stall to the client as a ``STALLED`` rejection.
    """

    mode = "none"
    absorbs_stalls = False
    stall_pause = 0.0

    def decide(self, stats: StoreStats, nbytes: int) -> AdmissionDecision:
        """Judge one write of ``nbytes`` against the engine snapshot."""
        return _ADMIT_NOW


class StopAdmission(AdmissionController):
    """Reject writes outright while the engine is saturated.

    Saturated means either backpressure bit: the component constraint is
    violated (``write_stalled``) or every spare memory component is
    queued behind a flush (``memory_fill >= 1``), i.e. the next write
    that rotates would stall inline.
    """

    mode = "stop"

    def __init__(self, retry_after: float = 0.05) -> None:
        if retry_after <= 0:
            raise ConfigurationError("retry_after must be positive")
        self._retry_after = retry_after

    def decide(self, stats: StoreStats, nbytes: int) -> AdmissionDecision:
        if stats.write_stalled:
            return AdmissionDecision(
                REJECT,
                retry_after=self._retry_after,
                reason="component constraint violated",
            )
        if stats.memory_fill >= 1.0:
            return AdmissionDecision(
                REJECT,
                retry_after=self._retry_after,
                reason="all memory components are flushing",
            )
        return _ADMIT_NOW


class LimitAdmission(AdmissionController):
    """Token-bucket byte-rate cap on admitted writes.

    Reuses the engine's :class:`~repro.engine.RateLimiter` with a
    capturing sleep: instead of blocking, the computed sleep becomes the
    decision's ``delay_seconds`` for the asyncio service to await.
    """

    mode = "limit"

    def __init__(
        self,
        rate_bytes_per_s: float,
        retry_after: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise ConfigurationError("limit mode needs a positive rate")
        self._captured = 0.0
        self._bucket = RateLimiter(
            rate_bytes_per_s, clock=clock, sleep=self._capture
        )
        self._retry_after = retry_after

    def _capture(self, delay: float) -> None:
        self._captured = delay

    def decide(self, stats: StoreStats, nbytes: int) -> AdmissionDecision:
        if stats.write_stalled or stats.memory_fill >= 1.0:
            # The cap should keep ingestion below maintenance bandwidth;
            # if the engine saturated anyway, behave like stop rather
            # than queue blindly.
            return AdmissionDecision(
                REJECT,
                retry_after=self._retry_after,
                reason="stalled despite rate cap",
            )
        self._captured = 0.0
        self._bucket.acquire(nbytes)
        if self._captured > 0.0:
            return AdmissionDecision(
                DELAY, delay_seconds=self._captured, reason="rate cap"
            )
        return _ADMIT_NOW


class GradualAdmission(AdmissionController):
    """Delay writes in proportion to engine pressure (bLSM-style).

    Pressure is the worse of the two backlogs: consumed component
    budget (``1 - write_headroom``, the merge backlog) and sealed
    memtable occupancy (``memory_fill``, the flush backlog). Below
    ``threshold`` writes pass untouched; above it the delay ramps
    linearly up to ``max_delay`` at full pressure. A saturated engine
    yields a ``max_delay`` pause rather than a rejection — this
    controller never says stop, only slower.
    """

    mode = "gradual"
    absorbs_stalls = True

    def __init__(self, max_delay: float = 0.02, threshold: float = 0.5) -> None:
        if max_delay <= 0:
            raise ConfigurationError("max_delay must be positive")
        if not 0.0 <= threshold < 1.0:
            raise ConfigurationError("threshold must be in [0, 1)")
        self._max_delay = max_delay
        self._threshold = threshold
        self.stall_pause = max_delay

    def decide(self, stats: StoreStats, nbytes: int) -> AdmissionDecision:
        merge_backlog = 1.0 - max(0.0, min(stats.write_headroom, 1.0))
        pressure = max(merge_backlog, stats.memory_fill)
        if stats.write_stalled:
            pressure = 1.0
        if pressure <= self._threshold:
            return _ADMIT_NOW
        ramp = (pressure - self._threshold) / (1.0 - self._threshold)
        return AdmissionDecision(
            DELAY,
            delay_seconds=self._max_delay * min(1.0, ramp),
            reason=f"pressure {pressure:.2f}",
        )


def build_admission(mode: str, **params) -> AdmissionController:
    """Factory mapping a CLI mode name to a controller instance.

    ``params`` are forwarded to the chosen controller's constructor;
    parameters foreign to that mode raise immediately.
    """
    if mode == "none":
        if params:
            raise ConfigurationError("mode 'none' takes no parameters")
        return AdmissionController()
    if mode == "stop":
        return StopAdmission(**params)
    if mode == "limit":
        return LimitAdmission(**params)
    if mode == "gradual":
        return GradualAdmission(**params)
    raise ConfigurationError(
        f"unknown admission mode {mode!r}; expected one of {MODES}"
    )
