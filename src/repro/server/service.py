"""The asyncio TCP key-value service over :class:`~repro.engine.LSMStore`.

One :class:`KVServer` owns a listening socket and serves the framed JSON
protocol (:mod:`repro.server.protocol`) from a store the caller opened.
Engine calls run in worker threads (``asyncio.to_thread``) so a write
blocked inside the engine's stall gate never freezes the event loop, and
every write first passes the admission controller
(:mod:`repro.server.admission`):

* ``admit`` — the write proceeds immediately;
* ``delay`` — the service sleeps the prescribed pause first (graceful
  slow-down: latency is added *before* the stall can happen);
* ``reject`` — the client gets a ``STALLED`` error with a
  ``retry_after`` hint (the paper's stop interaction, surfaced).

If the engine itself raises :class:`~repro.errors.WriteStalledError`
(store opened with ``stall_mode="reject"``), a controller that
``absorbs_stalls`` makes the service pause-and-retry internally until
``write_deadline`` — slow down, never stop — while other controllers
propagate the stall as a rejection.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field

from ..engine.datastore import LSMStore
from ..errors import (
    ClosedError,
    ConfigurationError,
    DataCorruptError,
    ProtocolError,
    WriteStalledError,
)
from ..obs import PrometheusEndpoint, render_prometheus
from ..obs import events as obs_events
from . import binproto, protocol
from .admission import REJECT, AdmissionController

#: Default bound on how long one admitted write may be absorbed/delayed.
DEFAULT_WRITE_DEADLINE = 5.0

#: Request-private key carrying the frame-receipt timestamp from dispatch
#: to the latency accounting (never serialized back to the client).
_RECEIVED_AT = "_received_at"


@dataclass
class ServerMetrics:
    """Cumulative serving-layer counters, exported via ``STATS``."""

    requests_total: int = 0
    reads_total: int = 0
    writes_admitted: int = 0
    writes_delayed: int = 0
    writes_rejected: int = 0
    stalls_absorbed: int = 0
    delay_seconds_total: float = 0.0
    protocol_errors: int = 0
    connections_total: int = 0
    connections_open: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view for the STATS response."""
        return asdict(self)


@dataclass
class _WriteOutcome:
    """Internal result of the admission + execution pipeline."""

    response: dict
    admitted: bool = False
    extra: dict = field(default_factory=dict)


class FramedServer:
    """Connection machinery shared by every framed-JSON TCP front-end.

    Owns the listening socket, the per-connection read loop, and verb
    dispatch to ``_op_<verb>`` coroutine methods. Subclasses —
    :class:`KVServer` over one engine, the cluster's
    :class:`~repro.cluster.router.ClusterRouter` over many — provide the
    verb handlers, a ``metrics`` object with ``requests_total``,
    ``protocol_errors``, ``connections_total``, and ``connections_open``
    counters, and an ``obs`` bundle backing the shared ``METRICS`` /
    ``EVENTS`` verbs and the optional Prometheus scrape endpoint
    (``metrics_port``; 0 picks a free port, None disables).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
        wire: str = "binary",
        engine_threads: int = 16,
    ) -> None:
        if wire not in ("binary", "json"):
            raise ConfigurationError(f"unknown wire mode {wire!r}")
        if engine_threads < 1:
            raise ConfigurationError("engine_threads must be at least 1")
        # "binary" accepts the per-connection magic-byte negotiation
        # (JSON clients keep working); "json" is strict legacy framing.
        self._accept_binary = wire == "binary"
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._clock = time.monotonic
        self._metrics_port = metrics_port
        self._exposition: PrometheusEndpoint | None = None
        self._tickers: list[tuple[object, float]] = []
        self._ticker_tasks: list[asyncio.Task] = []
        # Engine calls are I/O-bound (fsync waits, stall-gate sleeps,
        # disk reads), so the pool is sized past the CPU count — with
        # asyncio's default ~cpu+4 threads a group-commit leader's fsync
        # could only ever cover a handful of parked writers.
        self._engine_threads = engine_threads
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------

    def attach_ticker(self, fn, interval: float) -> None:
        """Run ``fn`` (a plain callable) every ``interval`` seconds.

        The tick runs in a worker thread so a slow callback (a memory
        rebalance touching every shard, say) never blocks the event
        loop. Attach before :meth:`start`; tasks are spawned there and
        cancelled in :meth:`aclose`. A tick that raises is dropped and
        the ticker keeps going — periodic upkeep must not die to one
        transient error.
        """
        if interval <= 0:
            raise ConfigurationError("ticker interval must be positive")
        self._tickers.append((fn, interval))

    async def _in_thread(self, fn, *args):
        """Run a blocking engine call on the server's own worker pool."""
        if self._executor is None:
            raise ConfigurationError("server is not started")
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _run_ticker(self, fn, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            try:
                await self._in_thread(fn)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — upkeep must keep ticking
                continue

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self._engine_threads,
            thread_name_prefix="kv-engine",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        if self._metrics_port is not None:
            self._exposition = PrometheusEndpoint(
                self._render_metrics, host=self._host,
                port=self._metrics_port,
            )
            await self._exposition.start()
        for fn, interval in self._tickers:
            self._ticker_tasks.append(
                asyncio.get_running_loop().create_task(
                    self._run_ticker(fn, interval)
                )
            )
        return self._host, self._port

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """Bound (host, port) of the Prometheus endpoint, if enabled."""
        if self._exposition is None:
            return None
        return self._host, self._exposition.port

    async def _render_metrics(self) -> str:
        return render_prometheus(await self.metrics_snapshot())

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        return self._host, self._port

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections, drop open ones, release the socket.

        Closing each open transport lets in-flight handlers see EOF and
        exit, which matters on Python 3.12+ where ``wait_closed`` waits
        for connection handlers, not just the listening socket.
        """
        if self._server is None:
            return
        for task in self._ticker_tasks:
            task.cancel()
        if self._ticker_tasks:
            await asyncio.gather(*self._ticker_tasks, return_exceptions=True)
            self._ticker_tasks.clear()
        if self._exposition is not None:
            await self._exposition.aclose()
            self._exposition = None
        self._server.close()
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        await self._server.wait_closed()
        self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def __aenter__(self) -> "FramedServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total += 1
        self.metrics.connections_open += 1
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            # Wire negotiation: a binary client announces itself with
            # one magic byte before its first frame; a JSON frame's
            # first byte is the high byte of a <=16 MiB length prefix,
            # so the two can never be confused. The peeked byte is
            # handed back to the JSON reader as frame prefix.
            try:
                first = await reader.readexactly(1)
            except asyncio.IncompleteReadError:
                first = b""
            if (
                first
                and first[0] == binproto.MAGIC
                and self._accept_binary
            ):
                await self._serve_binary(reader, writer)
            elif first:
                await self._serve_json(reader, writer, first)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.metrics.connections_open -= 1
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _serve_json(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        while True:
            try:
                message = await protocol.read_message(reader, first)
            except ProtocolError:
                self.metrics.protocol_errors += 1
                break  # framing is lost; drop the connection
            first = b""
            if message is None:
                break
            response = await self._dispatch(message)
            # A response that crossed a binary backend connection (a
            # router forwarding to binary-wire shards) may carry raw
            # bytes; rewrite them to the JSON wire's base64 form.
            await protocol.write_message(writer, protocol.jsonify(response))

    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                payload = await binproto.read_frame(reader)
                if payload is None:
                    break
                message = binproto.decode_request(payload)
            except ProtocolError:
                self.metrics.protocol_errors += 1
                break
            response = await self._dispatch(message)
            # The per-request latency breakdown was already recorded
            # into the server histograms; hot binary responses do not
            # re-ship it (that is half the point of the binary wire).
            response.pop("breakdown", None)
            await binproto.write_response(writer, response)

    async def _dispatch(self, message: dict) -> dict:
        self.metrics.requests_total += 1
        message[_RECEIVED_AT] = self._clock()
        verb = "?"
        try:
            verb = protocol.request_verb(message)
            handler = getattr(self, f"_op_{verb.lower()}")
            response = await handler(message)
        except ProtocolError as error:
            self.metrics.protocol_errors += 1
            return protocol.error_response(
                protocol.CODE_BAD_REQUEST, str(error)
            )
        except ClosedError as error:
            return protocol.error_response(protocol.CODE_CLOSED, str(error))
        except DataCorruptError as error:
            # Containment, not a crash: the engine quarantined a run and
            # refuses to answer unsoundly. Tell the client *which* key
            # range is affected so it can route around or wait for the
            # repair path; everything outside the range still serves.
            response = protocol.error_response(
                protocol.CODE_DATA_CORRUPT, str(error)
            )
            response["run_id"] = error.run_id
            response["min_key"] = error.min_key.hex()
            response["max_key"] = error.max_key.hex()
            return response
        except Exception as error:  # noqa: BLE001 — a request must answer
            return protocol.error_response(
                protocol.CODE_INTERNAL, f"{type(error).__name__}: {error}"
            )
        self._finalize_breakdown(verb, message, response)
        return response

    def _finalize_breakdown(
        self, verb: str, message: dict, response: dict
    ) -> None:
        """Complete and record a response's latency breakdown.

        Handlers attach the legs they can measure (admission wait, engine
        time, I/O time); this fills in ``total`` (frame receipt to
        response ready) and ``queue`` (total minus every attributed leg:
        event-loop scheduling, thread-pool handoff, serialization), then
        aggregates each leg into the tier's per-op histograms.
        """
        breakdown = response.get("breakdown")
        if breakdown is None:
            return
        total = self._clock() - message[_RECEIVED_AT]
        breakdown["total"] = total
        breakdown["queue"] = max(
            0.0,
            total
            - breakdown.get("admission", 0.0)
            - breakdown.get("engine", 0.0)
            - breakdown.get("io", 0.0)
            - breakdown.get("replication", 0.0),
        )
        registry = self.obs.registry
        op = verb.lower()
        for component in (
            "total", "queue", "admission", "engine", "io", "replication"
        ):
            if component in breakdown:
                registry.histogram(
                    "server_request_seconds",
                    labels={"op": op, "component": component},
                    help="Per-request latency breakdown by component.",
                ).observe(breakdown[component])

    async def _op_ping(self, message: dict) -> dict:
        return protocol.ok_response(pong=True)

    # -- observability verbs (shared by server and cluster router) -------

    async def metrics_snapshot(self) -> dict:
        """The structured snapshot METRICS serves (subclasses override)."""
        return self.obs.registry.snapshot()

    async def events_since(self, since: int, limit: int | None) -> list:
        """Events behind the EVENTS verb (subclasses may aggregate)."""
        return self.obs.tracer.events(since, limit)

    async def _op_metrics(self, message: dict) -> dict:
        return protocol.ok_response(metrics=await self.metrics_snapshot())

    async def _op_events(self, message: dict) -> dict:
        since, limit = protocol.events_cursor(message)
        events = await self.events_since(since, limit)
        return protocol.ok_response(
            events=[event.to_wire() for event in events],
            dropped=self.obs.tracer.dropped,
        )


class KVServer(FramedServer):
    """Serve one LSM store over TCP with stall-aware admission."""

    def __init__(
        self,
        store: LSMStore,
        admission: AdmissionController | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        write_deadline: float = DEFAULT_WRITE_DEADLINE,
        metrics_port: int | None = None,
        memory_arbiter=None,
        memory_interval: float = 1.0,
        wire: str = "binary",
    ) -> None:
        if write_deadline <= 0:
            raise ConfigurationError("write_deadline must be positive")
        super().__init__(host, port, metrics_port=metrics_port, wire=wire)
        self._store = store
        self._admission = admission or AdmissionController()
        self._write_deadline = write_deadline
        self.metrics = ServerMetrics()
        # Share the engine's bundle: one registry, one event ring, one
        # clock for the whole process tier.
        self.obs = store.obs
        self._clock = store.obs.clock
        self._memory_arbiter = memory_arbiter
        if memory_arbiter is not None:
            # The ticker wakes the arbiter; the arbiter's own interval
            # (injectable clock) decides whether a tick actually runs,
            # so wall-clock scheduling never leaks into its decisions.
            self.attach_ticker(memory_arbiter.maybe_tick, memory_interval)
        # Inline stores need the serving layer to pump maintenance
        # between bounced writes; stores with maintenance workers make
        # their own progress, so the stall hook would only burn a
        # thread-pool hop per rejection.
        self._pump_maintenance = not store.options.background_maintenance

    # -- the admission + write pipeline ----------------------------------

    async def _admitted_write(self, nbytes: int, apply) -> dict:
        """Run one write through admission, delays, and stall absorption.

        ``apply`` must return a :class:`~repro.engine.WriteTiming`; the
        response carries a ``breakdown`` with the admission wait this
        pipeline accumulated (delays, absorb pauses) and the engine/I-O
        legs from the timing (``engine`` excludes the WAL leg reported
        as ``io``; ``stall`` is informational, already inside engine).
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._write_deadline
        admission_wait = 0.0
        while True:
            decision = self._admission.decide(self._store.stats(), nbytes)
            if decision.action == REJECT:
                # Shedding load must not also starve maintenance: with
                # inline stores nothing else advances merges while every
                # write is bounced, so the stall would never clear.
                if self._pump_maintenance:
                    await self._in_thread(self._store.advance_maintenance)
                self.metrics.writes_rejected += 1
                self.obs.tracer.emit(
                    obs_events.ADMISSION,
                    action="reject",
                    reason=decision.reason or "admission",
                    nbytes=nbytes,
                )
                response = protocol.error_response(
                    protocol.CODE_STALLED,
                    decision.reason or "write rejected by admission",
                    retry_after=decision.retry_after,
                )
                response["breakdown"] = {
                    "admission": admission_wait, "engine": 0.0, "io": 0.0,
                }
                return response
            if decision.delay_seconds > 0.0:
                self.metrics.writes_delayed += 1
                self.metrics.delay_seconds_total += decision.delay_seconds
                self.obs.tracer.emit(
                    obs_events.ADMISSION,
                    action="delay",
                    seconds=decision.delay_seconds,
                    nbytes=nbytes,
                )
                admission_wait += decision.delay_seconds
                if self._pump_maintenance:
                    await self._in_thread(self._store.advance_maintenance)
                await asyncio.sleep(decision.delay_seconds)
            try:
                timing = await self._in_thread(apply)
            except WriteStalledError as error:
                # Rejected writes make no maintenance progress in inline
                # mode, so the serving layer pumps merges forward — the
                # stall would otherwise never clear while clients back
                # off (merge-coupled serving, bLSM-style).
                if self._pump_maintenance:
                    await self._in_thread(self._store.advance_maintenance)
                if (
                    self._admission.absorbs_stalls
                    and loop.time() < deadline
                ):
                    self.metrics.stalls_absorbed += 1
                    pause = self._admission.stall_pause or 0.001
                    self.metrics.delay_seconds_total += pause
                    self.obs.tracer.emit(
                        obs_events.ADMISSION,
                        action="absorb",
                        seconds=pause,
                        nbytes=nbytes,
                    )
                    admission_wait += pause
                    await asyncio.sleep(pause)
                    continue  # slow down, don't stop
                self.metrics.writes_rejected += 1
                self.obs.tracer.emit(
                    obs_events.ADMISSION,
                    action="reject",
                    reason="engine stall",
                    nbytes=nbytes,
                )
                response = protocol.error_response(
                    protocol.CODE_STALLED,
                    str(error),
                    retry_after=self._admission.stall_pause or 0.05,
                )
                response["breakdown"] = {
                    "admission": admission_wait, "engine": 0.0, "io": 0.0,
                }
                return response
            self.metrics.writes_admitted += 1
            return protocol.ok_response(
                breakdown={
                    "admission": admission_wait,
                    "engine": max(
                        0.0, timing.engine_seconds - timing.io_seconds
                    ),
                    "io": timing.io_seconds,
                    "stall": timing.stall_seconds,
                }
            )

    # -- verbs -----------------------------------------------------------

    async def _op_put(self, message: dict) -> dict:
        key = protocol.request_key(message)
        value = protocol.request_value(message)
        return await self._admitted_write(
            len(key) + len(value), lambda: self._store.timed_put(key, value)
        )

    async def _op_del(self, message: dict) -> dict:
        key = protocol.request_key(message)
        return await self._admitted_write(
            len(key), lambda: self._store.timed_delete(key)
        )

    async def _op_batch(self, message: dict) -> dict:
        ops = protocol.batch_ops(message)
        nbytes = sum(
            len(key) + (0 if value is None else len(value))
            for key, value in ops
        )
        response = await self._admitted_write(
            nbytes, lambda: self._store.timed_write_batch(ops)
        )
        if response.get("ok"):
            response["count"] = len(ops)
        return response

    def _timed_read(self, operation):
        started = self._clock()
        result = operation()
        return result, self._clock() - started

    async def _op_get(self, message: dict) -> dict:
        key = protocol.request_key(message)
        self.metrics.reads_total += 1
        value, engine_seconds = await self._in_thread(
            self._timed_read, lambda: self._store.get(key)
        )
        if message.get(binproto.WIRE_KEY):
            # Binary connection: ship the value raw, no base64.
            wire_value = value
        else:
            wire_value = None if value is None else protocol.b64encode(value)
        return protocol.ok_response(
            value=wire_value,
            breakdown={"engine": engine_seconds},
        )

    async def _op_scan(self, message: dict) -> dict:
        lo, hi, limit = protocol.scan_bounds(message)
        self.metrics.reads_total += 1
        items, engine_seconds = await self._in_thread(
            self._timed_read, lambda: list(self._store.scan(lo, hi, limit))
        )
        return protocol.ok_response(
            items=[
                [protocol.b64encode(key), protocol.b64encode(value)]
                for key, value in items
            ],
            breakdown={"engine": engine_seconds},
        )

    # -- replication verbs (overridden by ReplicatedKVServer) ------------

    async def _op_replicate(self, message: dict) -> dict:
        return protocol.error_response(
            protocol.CODE_BAD_REQUEST,
            "replication is not enabled on this server",
        )

    async def _op_promote(self, message: dict) -> dict:
        return protocol.error_response(
            protocol.CODE_BAD_REQUEST,
            "replication is not enabled on this server",
        )

    async def _op_fetch_range(self, message: dict) -> dict:
        return protocol.error_response(
            protocol.CODE_BAD_REQUEST,
            "replication is not enabled on this server",
        )

    # -- observability ----------------------------------------------------

    def _sync_registry(self) -> dict:
        """Scrape-time sync: gauges and mirrored counters, then snapshot.

        The :class:`ServerMetrics` dataclass stays the source of truth
        for serving-layer totals (STATS reports it directly); here its
        cumulative values are mirrored into the registry so one scrape
        sees engine and server series side by side.
        """
        self._store.refresh_gauges()
        registry = self.obs.registry
        for name, value in self.metrics.snapshot().items():
            if name == "connections_open":
                registry.gauge(
                    "server_connections_open",
                    help="Currently open client connections.",
                ).set(value)
                continue
            suffix = (
                "_seconds_total" if name.endswith("_seconds_total") else
                "_total"
            )
            base = name.removesuffix("_seconds_total").removesuffix("_total")
            registry.counter(
                f"server_{base}{suffix}",
                help=f"Serving-layer cumulative {name.replace('_', ' ')}.",
            ).set_total(value)
        return registry.snapshot()

    async def metrics_snapshot(self) -> dict:
        """Structured metrics for METRICS and the scrape endpoint."""
        return await self._in_thread(self._sync_registry)

    def _stats_with_corruption(self) -> tuple:
        return self._store.stats(), self._store.corruption_status()

    async def _op_stats(self, message: dict) -> dict:
        stats, corruption = await self._in_thread(
            self._stats_with_corruption
        )
        engine = asdict(stats)
        engine["components_per_level"] = {
            str(level): count
            for level, count in stats.components_per_level.items()
        }
        return protocol.ok_response(
            engine=engine,
            server=self.metrics.snapshot(),
            corruption=corruption,
            admission_mode=self._admission.mode,
        )


async def serve(
    store: LSMStore,
    admission: AdmissionController | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: asyncio.Event | None = None,
    metrics_port: int | None = None,
    wire: str = "binary",
) -> None:
    """Convenience runner: start a server and serve until cancelled."""
    server = KVServer(
        store, admission, host, port, metrics_port=metrics_port, wire=wire
    )
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        raise
    finally:
        await server.aclose()
