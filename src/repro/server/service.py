"""The asyncio TCP key-value service over :class:`~repro.engine.LSMStore`.

One :class:`KVServer` owns a listening socket and serves the framed JSON
protocol (:mod:`repro.server.protocol`) from a store the caller opened.
Engine calls run in worker threads (``asyncio.to_thread``) so a write
blocked inside the engine's stall gate never freezes the event loop, and
every write first passes the admission controller
(:mod:`repro.server.admission`):

* ``admit`` — the write proceeds immediately;
* ``delay`` — the service sleeps the prescribed pause first (graceful
  slow-down: latency is added *before* the stall can happen);
* ``reject`` — the client gets a ``STALLED`` error with a
  ``retry_after`` hint (the paper's stop interaction, surfaced).

If the engine itself raises :class:`~repro.errors.WriteStalledError`
(store opened with ``stall_mode="reject"``), a controller that
``absorbs_stalls`` makes the service pause-and-retry internally until
``write_deadline`` — slow down, never stop — while other controllers
propagate the stall as a rejection.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import asdict, dataclass, field

from ..engine.datastore import LSMStore
from ..errors import (
    ClosedError,
    ConfigurationError,
    ProtocolError,
    WriteStalledError,
)
from . import protocol
from .admission import REJECT, AdmissionController

#: Default bound on how long one admitted write may be absorbed/delayed.
DEFAULT_WRITE_DEADLINE = 5.0


@dataclass
class ServerMetrics:
    """Cumulative serving-layer counters, exported via ``STATS``."""

    requests_total: int = 0
    reads_total: int = 0
    writes_admitted: int = 0
    writes_delayed: int = 0
    writes_rejected: int = 0
    stalls_absorbed: int = 0
    delay_seconds_total: float = 0.0
    protocol_errors: int = 0
    connections_total: int = 0
    connections_open: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view for the STATS response."""
        return asdict(self)


@dataclass
class _WriteOutcome:
    """Internal result of the admission + execution pipeline."""

    response: dict
    admitted: bool = False
    extra: dict = field(default_factory=dict)


class FramedServer:
    """Connection machinery shared by every framed-JSON TCP front-end.

    Owns the listening socket, the per-connection read loop, and verb
    dispatch to ``_op_<verb>`` coroutine methods. Subclasses —
    :class:`KVServer` over one engine, the cluster's
    :class:`~repro.cluster.router.ClusterRouter` over many — provide the
    verb handlers and a ``metrics`` object with ``requests_total``,
    ``protocol_errors``, ``connections_total``, and ``connections_open``
    counters.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        return self._host, self._port

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections, drop open ones, release the socket.

        Closing each open transport lets in-flight handlers see EOF and
        exit, which matters on Python 3.12+ where ``wait_closed`` waits
        for connection handlers, not just the listening socket.
        """
        if self._server is None:
            return
        self._server.close()
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "FramedServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total += 1
        self.metrics.connections_open += 1
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except ProtocolError:
                    self.metrics.protocol_errors += 1
                    break  # framing is lost; drop the connection
                if message is None:
                    break
                response = await self._dispatch(message)
                await protocol.write_message(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.metrics.connections_open -= 1
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, message: dict) -> dict:
        self.metrics.requests_total += 1
        try:
            verb = protocol.request_verb(message)
            handler = getattr(self, f"_op_{verb.lower()}")
            return await handler(message)
        except ProtocolError as error:
            self.metrics.protocol_errors += 1
            return protocol.error_response(
                protocol.CODE_BAD_REQUEST, str(error)
            )
        except ClosedError as error:
            return protocol.error_response(protocol.CODE_CLOSED, str(error))
        except Exception as error:  # noqa: BLE001 — a request must answer
            return protocol.error_response(
                protocol.CODE_INTERNAL, f"{type(error).__name__}: {error}"
            )

    async def _op_ping(self, message: dict) -> dict:
        return protocol.ok_response(pong=True)


class KVServer(FramedServer):
    """Serve one LSM store over TCP with stall-aware admission."""

    def __init__(
        self,
        store: LSMStore,
        admission: AdmissionController | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        write_deadline: float = DEFAULT_WRITE_DEADLINE,
    ) -> None:
        if write_deadline <= 0:
            raise ConfigurationError("write_deadline must be positive")
        super().__init__(host, port)
        self._store = store
        self._admission = admission or AdmissionController()
        self._write_deadline = write_deadline
        self.metrics = ServerMetrics()

    # -- the admission + write pipeline ----------------------------------

    async def _admitted_write(self, nbytes: int, apply) -> dict:
        """Run one write through admission, delays, and stall absorption."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._write_deadline
        while True:
            decision = self._admission.decide(self._store.stats(), nbytes)
            if decision.action == REJECT:
                # Shedding load must not also starve maintenance: with
                # inline stores nothing else advances merges while every
                # write is bounced, so the stall would never clear.
                await asyncio.to_thread(self._store.advance_maintenance)
                self.metrics.writes_rejected += 1
                return protocol.error_response(
                    protocol.CODE_STALLED,
                    decision.reason or "write rejected by admission",
                    retry_after=decision.retry_after,
                )
            if decision.delay_seconds > 0.0:
                self.metrics.writes_delayed += 1
                self.metrics.delay_seconds_total += decision.delay_seconds
                await asyncio.to_thread(self._store.advance_maintenance)
                await asyncio.sleep(decision.delay_seconds)
            try:
                await asyncio.to_thread(apply)
            except WriteStalledError as error:
                # Rejected writes make no maintenance progress in inline
                # mode, so the serving layer pumps merges forward — the
                # stall would otherwise never clear while clients back
                # off (merge-coupled serving, bLSM-style).
                await asyncio.to_thread(self._store.advance_maintenance)
                if (
                    self._admission.absorbs_stalls
                    and loop.time() < deadline
                ):
                    self.metrics.stalls_absorbed += 1
                    pause = self._admission.stall_pause or 0.001
                    self.metrics.delay_seconds_total += pause
                    await asyncio.sleep(pause)
                    continue  # slow down, don't stop
                self.metrics.writes_rejected += 1
                return protocol.error_response(
                    protocol.CODE_STALLED,
                    str(error),
                    retry_after=self._admission.stall_pause or 0.05,
                )
            self.metrics.writes_admitted += 1
            return protocol.ok_response()

    # -- verbs -----------------------------------------------------------

    async def _op_put(self, message: dict) -> dict:
        key = protocol.request_key(message)
        value = protocol.request_value(message)
        return await self._admitted_write(
            len(key) + len(value), lambda: self._store.put(key, value)
        )

    async def _op_del(self, message: dict) -> dict:
        key = protocol.request_key(message)
        return await self._admitted_write(
            len(key), lambda: self._store.delete(key)
        )

    async def _op_batch(self, message: dict) -> dict:
        ops = protocol.batch_ops(message)
        nbytes = sum(
            len(key) + (0 if value is None else len(value))
            for key, value in ops
        )
        response = await self._admitted_write(
            nbytes, lambda: self._store.write_batch(ops)
        )
        if response.get("ok"):
            response["count"] = len(ops)
        return response

    async def _op_get(self, message: dict) -> dict:
        key = protocol.request_key(message)
        self.metrics.reads_total += 1
        value = await asyncio.to_thread(self._store.get, key)
        return protocol.ok_response(
            value=None if value is None else protocol.b64encode(value)
        )

    async def _op_scan(self, message: dict) -> dict:
        lo, hi, limit = protocol.scan_bounds(message)
        self.metrics.reads_total += 1
        items = await asyncio.to_thread(
            lambda: list(self._store.scan(lo, hi, limit))
        )
        return protocol.ok_response(
            items=[
                [protocol.b64encode(key), protocol.b64encode(value)]
                for key, value in items
            ]
        )

    async def _op_stats(self, message: dict) -> dict:
        stats = await asyncio.to_thread(self._store.stats)
        engine = asdict(stats)
        engine["components_per_level"] = {
            str(level): count
            for level, count in stats.components_per_level.items()
        }
        return protocol.ok_response(
            engine=engine,
            server=self.metrics.snapshot(),
            admission_mode=self._admission.mode,
        )


async def serve(
    store: LSMStore,
    admission: AdmissionController | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: asyncio.Event | None = None,
) -> None:
    """Convenience runner: start a server and serve until cancelled."""
    server = KVServer(store, admission, host, port)
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        raise
    finally:
        await server.aclose()
