"""The incremental scrubber: cursor-based verification of live runs.

One scrub *pass* verifies every data block of every readable run that
was live when the pass started. The pass is chopped into claim-sized
chunks so it rides the engine's claim/publish maintenance protocol: a
worker claims the scrubber under the store lock (at lower priority than
flushes and merges), verifies up to one chunk's worth of blocks with the
lock released, and publishes the outcome back under the lock. Between
chunks the cursor — current run, next block, running key-order state —
persists here.

Detection discipline: a block that fails its checksum is re-read once
before it becomes a finding, splitting a transient read error from
persistent at-rest damage. Structural problems (keys out of order,
entry counts or key bounds disagreeing with the meta block) are findings
immediately — they are properties of the decoded bytes, not the read.

The scrubber never mutates the store; it only *reports*. The store turns
a finding into a quarantine under its own lock, after checking the run
is still live (a merge may have retired it mid-scrub — the dedicated
reader's POSIX file handle keeps working on the deleted file, and the
stale finding is simply dropped).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..errors import CorruptionError
from ..obs import events as obs_events
from ..engine.sstable import SSTableReader


@dataclass
class _RunCursor:
    """Scrub progress through one run (touched only by the claimant)."""

    run_id: int
    path: str
    reader: SSTableReader | None = None
    next_block: int = 0
    prev_key: bytes | None = None
    first_key: bytes | None = None
    last_key: bytes | None = None
    entries: int = 0


@dataclass(frozen=True)
class ScrubTask:
    """One claimed chunk of scrub work."""

    cursor: _RunCursor


@dataclass(frozen=True)
class ScrubResult:
    """What one executed chunk observed."""

    run_id: int
    blocks: int = 0
    bytes_verified: int = 0
    done: bool = False  # finished with this run (verified, gone, or bad)
    gone: bool = False  # the run file vanished (retired by a merge)
    finding: str | None = None  # persistent corruption, ready to publish


@dataclass
class _PassStats:
    started: float = 0.0
    runs: int = 0
    blocks: int = 0
    bytes_verified: int = 0
    findings: int = 0
    finished: float = field(default=0.0)


class Scrubber:
    """Pass/cursor state machine behind the store's scrub task."""

    def __init__(
        self,
        interval: float,
        chunk_bytes: int,
        rate_limiter,
        scrub_limiter=None,
        obs=None,
    ) -> None:
        self._interval = interval
        self._chunk_bytes = max(chunk_bytes, 1)
        self._rate = rate_limiter
        self._scrub_rate = scrub_limiter
        self._obs = obs
        self._clock = obs.clock if obs is not None else time.monotonic
        self._next_due = self._clock() + interval
        self._forced = False
        self._in_pass = False
        self._claimed = False
        self._pending: list[tuple[int, str]] = []
        self._current: _RunCursor | None = None
        self._pass = _PassStats()
        self._last_pass: _PassStats | None = None
        self.passes_completed = 0
        self.runs_verified = 0
        self.blocks_verified = 0
        self.bytes_verified = 0
        self.findings = 0
        if obs is not None:
            registry = obs.registry
            self._m_blocks = registry.counter(
                "engine_scrub_blocks_verified_total",
                help="Data blocks checksum-verified by the scrubber.",
            )
            self._m_bytes = registry.counter(
                "engine_scrub_bytes_verified_total",
                help="Data-block bytes read and verified by the scrubber.",
            )
            self._m_passes = registry.counter(
                "engine_scrub_passes_total",
                help="Completed full scrub passes over the live runs.",
            )
            self._m_findings = registry.counter(
                "engine_scrub_findings_total",
                help="Persistent corruption findings raised by the scrubber.",
            )

    # -- claim / publish (call under the store lock) -------------------

    def _due(self, now: float) -> bool:
        if self._forced:
            return True
        if self._interval <= 0:
            return False
        return now >= self._next_due

    def force_due(self) -> None:
        """Make the next claim start a pass immediately (CLI/tests)."""
        self._forced = True

    def claim(self, targets: list[tuple[int, str]]) -> ScrubTask | None:
        """Claim the next chunk of scrub work; None when idle or taken.

        ``targets`` is the store's current readable-run work list — it
        is captured once per pass, at pass start, so a pass has a
        definite extent even while merges churn the run set underneath.
        """
        if self._claimed:
            return None
        now = self._clock()
        if not self._in_pass:
            if not self._due(now):
                return None
            self._forced = False
            self._in_pass = True
            self._pending = list(targets)
            self._pass = _PassStats(started=now)
        if self._current is None:
            if not self._pending:
                self._finish_pass(now)
                return None
            run_id, path = self._pending.pop(0)
            self._current = _RunCursor(run_id=run_id, path=path)
        self._claimed = True
        return ScrubTask(cursor=self._current)

    def publish(self, result: ScrubResult) -> None:
        """Fold one executed chunk back into the cursor (under the lock)."""
        self._claimed = False
        self._pass.blocks += result.blocks
        self._pass.bytes_verified += result.bytes_verified
        self.blocks_verified += result.blocks
        self.bytes_verified += result.bytes_verified
        if self._obs is not None and result.blocks:
            self._m_blocks.inc(result.blocks)
            self._m_bytes.inc(result.bytes_verified)
        if result.done:
            self._close_current()
            if not result.gone:
                self._pass.runs += 1
                self.runs_verified += 1
            if result.finding is not None:
                self._pass.findings += 1
                self.findings += 1
                if self._obs is not None:
                    self._m_findings.inc()

    def fail(self, task: ScrubTask) -> None:
        """A chunk's executor raised unexpectedly: skip this run."""
        del task
        self._claimed = False
        self._close_current()

    def _close_current(self) -> None:
        if self._current is not None and self._current.reader is not None:
            try:
                self._current.reader.close()
            except Exception:  # noqa: BLE001 — best-effort cleanup
                pass
        self._current = None

    def _finish_pass(self, now: float) -> None:
        self._in_pass = False
        self._pass.finished = now
        self._last_pass = self._pass
        self.passes_completed += 1
        if self._interval > 0:
            self._next_due = now + self._interval
        if self._obs is not None:
            self._m_passes.inc()
            self._obs.tracer.emit(
                obs_events.SCRUB_PASS,
                runs=self._pass.runs,
                blocks=self._pass.blocks,
                bytes=self._pass.bytes_verified,
                findings=self._pass.findings,
                seconds=now - self._pass.started,
            )

    # -- execution (no store lock held) --------------------------------

    def execute(self, task: ScrubTask) -> ScrubResult:
        """Verify up to one chunk of the claimed run's blocks.

        Opens a dedicated, *uncached* reader on first touch — the block
        cache only ever holds verified payloads, so scrubbing through it
        would re-verify memory instead of observing the disk.
        """
        cursor = task.cursor
        if cursor.reader is None:
            try:
                cursor.reader = SSTableReader(cursor.path)
            except (CorruptionError, OSError) as error:
                if not os.path.exists(cursor.path):
                    return ScrubResult(run_id=cursor.run_id, done=True, gone=True)
                return ScrubResult(
                    run_id=cursor.run_id, done=True, finding=str(error)
                )
        reader = cursor.reader
        blocks = 0
        consumed = 0
        while cursor.next_block < reader.block_count:
            if consumed >= self._chunk_bytes:
                return ScrubResult(
                    run_id=cursor.run_id,
                    blocks=blocks,
                    bytes_verified=consumed,
                )
            _offset, length = reader.block_span(cursor.next_block)
            # Debit the shared maintenance budget *before* the read (the
            # pacing contract), plus the dedicated scrub throttle if set.
            self._rate.acquire(length)
            if self._scrub_rate is not None:
                self._scrub_rate.acquire(length)
            try:
                try:
                    keys = reader.verify_block(cursor.next_block)
                except CorruptionError:
                    # Re-read once: a transient device hiccup passes the
                    # second time; persistent at-rest rot fails again.
                    keys = reader.verify_block(cursor.next_block)
            except CorruptionError as error:
                return ScrubResult(
                    run_id=cursor.run_id,
                    blocks=blocks,
                    bytes_verified=consumed,
                    done=True,
                    finding=str(error),
                )
            for key in keys:
                if cursor.prev_key is not None and key <= cursor.prev_key:
                    return ScrubResult(
                        run_id=cursor.run_id,
                        blocks=blocks,
                        bytes_verified=consumed,
                        done=True,
                        finding=(
                            f"{cursor.path}: keys out of order in block "
                            f"{cursor.next_block}"
                        ),
                    )
                cursor.prev_key = key
            if keys:
                if cursor.first_key is None:
                    cursor.first_key = keys[0]
                cursor.last_key = keys[-1]
            cursor.entries += len(keys)
            cursor.next_block += 1
            blocks += 1
            consumed += length
        finding = self._structural_finding(cursor, reader)
        return ScrubResult(
            run_id=cursor.run_id,
            blocks=blocks,
            bytes_verified=consumed,
            done=True,
            finding=finding,
        )

    @staticmethod
    def _structural_finding(
        cursor: _RunCursor, reader: SSTableReader
    ) -> str | None:
        """End-of-run checks of the walked data against the meta block."""
        if cursor.entries != reader.entry_count:
            return (
                f"{cursor.path}: meta claims {reader.entry_count} entries, "
                f"data blocks hold {cursor.entries}"
            )
        if cursor.entries:
            if cursor.first_key != reader.min_key:
                return (
                    f"{cursor.path}: meta min_key disagrees with the "
                    f"first data key"
                )
            if cursor.last_key != reader.max_key:
                return (
                    f"{cursor.path}: meta max_key disagrees with the "
                    f"last data key"
                )
        return None

    # -- reporting -----------------------------------------------------

    def summary(self) -> dict:
        """JSON-safe progress snapshot (STATS verb, CLI, tests)."""
        last = self._last_pass
        return {
            "passes_completed": self.passes_completed,
            "runs_verified": self.runs_verified,
            "blocks_verified": self.blocks_verified,
            "bytes_verified": self.bytes_verified,
            "findings": self.findings,
            "in_pass": self._in_pass,
            "last_pass": None
            if last is None
            else {
                "runs": last.runs,
                "blocks": last.blocks,
                "bytes": last.bytes_verified,
                "findings": last.findings,
                "seconds": last.finished - last.started,
            },
        }
