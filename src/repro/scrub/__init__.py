"""Background integrity scrubbing (:mod:`repro.scrub`).

The scrubber is the proactive half of the engine's corruption-survival
story: where the read path only *reacts* to checksum failures it happens
to hit, the scrubber walks every live run block by block on the
maintenance worker pool, re-verifying CRCs, key ordering, and meta-block
bounds against what is actually on disk — so cold data's bit rot is
found and quarantined before a query ever depends on it.

Scrub I/O is debited against the same maintenance rate limiter that
paces flushes and merges (plus an optional dedicated scrub throttle), so
verification provably competes with — never adds to — the background I/O
budget the foreground already absorbs.
"""

from .scrubber import ScrubResult, ScrubTask, Scrubber

__all__ = ["ScrubResult", "ScrubTask", "Scrubber"]
