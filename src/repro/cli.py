"""Command-line driver: run the paper's methodology without writing code.

::

    python -m repro two-phase --policy tiering --scheduler greedy
    python -m repro compare --policy leveling
    python -m repro sweep size-ratio --policy tiering --ratios 2,4,6,10
    python -m repro sweep utilization --policy tiering --points 0.5,0.8,0.95
    python -m repro sweep partition-size --files-mib 8,64,512

Every command builds the corresponding :class:`~repro.harness.ExperimentSpec`,
runs the two-phase evaluation on the scaled simulated testbed, and prints
the same tables/sparklines the benchmark suite produces.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .errors import ReproError
from .harness import (
    ExperimentSpec,
    compare_schedulers,
    format_latency_profile,
    format_table,
    partition_size_sweep,
    size_ratio_sweep,
    sparkline,
    two_phase,
    utilization_sweep,
)

_POLICIES = ("tiering", "leveling", "lazy-leveling", "size-tiered", "partitioned")


def _spec_for(args: argparse.Namespace) -> ExperimentSpec:
    common = dict(scale=args.scale)
    if args.policy == "tiering":
        spec = ExperimentSpec.tiering(
            size_ratio=int(args.size_ratio or 3),
            scheduler=args.scheduler,
            distribution=args.distribution,
            **common,
        )
    elif args.policy == "leveling":
        spec = ExperimentSpec.leveling(
            size_ratio=float(args.size_ratio or 10),
            scheduler=args.scheduler,
            distribution=args.distribution,
            **common,
        )
    elif args.policy == "lazy-leveling":
        spec = ExperimentSpec.lazy_leveling(
            size_ratio=int(args.size_ratio or 3),
            scheduler=args.scheduler,
            distribution=args.distribution,
            **common,
        )
    elif args.policy == "size-tiered":
        spec = ExperimentSpec.size_tiered(
            scheduler=args.scheduler,
            testing_fix=args.testing_fix,
            **common,
        )
    elif args.policy == "partitioned":
        spec = ExperimentSpec.partitioned(
            testing_fix=args.testing_fix, **common
        )
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown policy {args.policy!r}")
    return spec.with_(utilization=args.utilization)


def _cmd_two_phase(args: argparse.Namespace) -> int:
    spec = _spec_for(args)
    print(f"spec: {spec.name} (scale x{args.scale:.0f}, "
          f"utilization {args.utilization:.0%})")
    outcome = two_phase(spec)
    print(f"testing phase:  max write throughput = "
          f"{outcome.max_write_throughput:.1f} entries/s")
    print(f"running phase:  arrivals = {outcome.arrival_rate:.1f} entries/s")
    print("  throughput  "
          + sparkline(outcome.running.throughput_series(), 60))
    print(f"  stalls: {outcome.running.stall_count()} "
          f"({outcome.running.stall_time:.0f}s)")
    print("  write latencies: "
          + format_latency_profile(outcome.running.write_latency_profile()))
    print(f"  sustainable: {'yes' if outcome.sustainable else 'NO'}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    schedulers = [s.strip() for s in args.schedulers.split(",")]

    def make(scheduler: str) -> ExperimentSpec:
        forged = argparse.Namespace(**vars(args))
        forged.scheduler = scheduler
        return _spec_for(forged)

    rows = compare_schedulers(make, schedulers)
    print(format_table(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis == "size-ratio":
        ratios = [int(v) for v in args.ratios.split(",")]
        rows = size_ratio_sweep(args.policy, ratios, scale=args.scale)
    elif args.axis == "utilization":
        points = [float(v) for v in args.points.split(",")]
        rows = utilization_sweep(_spec_for(args), points)
    elif args.axis == "partition-size":
        sizes = [float(v) for v in args.files_mib.split(",")]
        rows = partition_size_sweep(sizes, scale=args.scale)
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown sweep axis {args.axis!r}")
    print(format_table(rows))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .engine import verify_store

    report = verify_store(args.directory)
    print(report.summary())
    return 0 if report.clean else 1


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy", choices=_POLICIES, default="tiering",
        help="merge policy (default: tiering)",
    )
    parser.add_argument(
        "--scheduler", default="greedy",
        help="runtime scheduler: single/fair/greedy/greedy-<k> "
             "(default: greedy)",
    )
    parser.add_argument(
        "--size-ratio", default=None,
        help="size ratio T (defaults: tiering 3, leveling 10)",
    )
    parser.add_argument(
        "--distribution", choices=("uniform", "zipf"), default="uniform",
        help="update key distribution (default: uniform)",
    )
    parser.add_argument(
        "--scale", type=float, default=256.0,
        help="testbed scale factor (default: 256)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.95,
        help="running-phase utilization (default: 0.95)",
    )
    parser.add_argument(
        "--testing-fix", action="store_true",
        help="apply the paper's testing-phase determinism fix "
             "(size-tiered / partitioned policies)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Two-phase LSM write-stall evaluation "
                    "(Luo & Carey, PVLDB 2019 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    two_phase_cmd = commands.add_parser(
        "two-phase", help="run the full testing+running methodology"
    )
    _add_common(two_phase_cmd)
    two_phase_cmd.set_defaults(handler=_cmd_two_phase)

    compare_cmd = commands.add_parser(
        "compare", help="compare schedulers at identical arrivals"
    )
    _add_common(compare_cmd)
    compare_cmd.add_argument(
        "--schedulers", default="single,fair,greedy",
        help="comma-separated scheduler list",
    )
    compare_cmd.set_defaults(handler=_cmd_compare)

    sweep_cmd = commands.add_parser(
        "sweep", help="parameter sweeps (figures 11, 24, 27)"
    )
    sweep_cmd.add_argument(
        "axis", choices=("size-ratio", "utilization", "partition-size")
    )
    _add_common(sweep_cmd)
    sweep_cmd.add_argument("--ratios", default="2,4,6,10")
    sweep_cmd.add_argument("--points", default="0.5,0.7,0.8,0.9,0.95")
    sweep_cmd.add_argument("--files-mib", default="8,64,512,4096")
    sweep_cmd.set_defaults(handler=_cmd_sweep)

    verify_cmd = commands.add_parser(
        "verify", help="audit a storage-engine directory's integrity"
    )
    verify_cmd.add_argument("directory", help="LSMStore data directory")
    verify_cmd.set_defaults(handler=_cmd_verify)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
