"""Command-line driver: run the paper's methodology without writing code.

::

    python -m repro two-phase --policy tiering --scheduler greedy
    python -m repro compare --policy leveling
    python -m repro sweep size-ratio --policy tiering --ratios 2,4,6,10
    python -m repro sweep utilization --policy tiering --points 0.5,0.8,0.95
    python -m repro sweep partition-size --files-mib 8,64,512
    python -m repro serve /tmp/db --admission gradual
    python -m repro loadgen --port 7379 --mode two-phase

Every command builds the corresponding :class:`~repro.harness.ExperimentSpec`,
runs the two-phase evaluation on the scaled simulated testbed, and prints
the same tables/sparklines the benchmark suite produces.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .errors import ReproError
from .harness import (
    ExperimentSpec,
    compare_schedulers,
    format_latency_profile,
    format_table,
    partition_size_sweep,
    size_ratio_sweep,
    sparkline,
    two_phase,
    utilization_sweep,
)

_POLICIES = ("tiering", "leveling", "lazy-leveling", "size-tiered", "partitioned")


def _spec_for(args: argparse.Namespace) -> ExperimentSpec:
    common = dict(scale=args.scale)
    if args.policy == "tiering":
        spec = ExperimentSpec.tiering(
            size_ratio=int(args.size_ratio or 3),
            scheduler=args.scheduler,
            distribution=args.distribution,
            **common,
        )
    elif args.policy == "leveling":
        spec = ExperimentSpec.leveling(
            size_ratio=float(args.size_ratio or 10),
            scheduler=args.scheduler,
            distribution=args.distribution,
            **common,
        )
    elif args.policy == "lazy-leveling":
        spec = ExperimentSpec.lazy_leveling(
            size_ratio=int(args.size_ratio or 3),
            scheduler=args.scheduler,
            distribution=args.distribution,
            **common,
        )
    elif args.policy == "size-tiered":
        spec = ExperimentSpec.size_tiered(
            scheduler=args.scheduler,
            testing_fix=args.testing_fix,
            **common,
        )
    elif args.policy == "partitioned":
        spec = ExperimentSpec.partitioned(
            testing_fix=args.testing_fix, **common
        )
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown policy {args.policy!r}")
    return spec.with_(utilization=args.utilization)


def _cmd_two_phase(args: argparse.Namespace) -> int:
    spec = _spec_for(args)
    print(f"spec: {spec.name} (scale x{args.scale:.0f}, "
          f"utilization {args.utilization:.0%})")
    outcome = two_phase(spec)
    print(f"testing phase:  max write throughput = "
          f"{outcome.max_write_throughput:.1f} entries/s")
    print(f"running phase:  arrivals = {outcome.arrival_rate:.1f} entries/s")
    print("  throughput  "
          + sparkline(outcome.running.throughput_series(), 60))
    print(f"  stalls: {outcome.running.stall_count()} "
          f"({outcome.running.stall_time:.0f}s)")
    print("  write latencies: "
          + format_latency_profile(outcome.running.write_latency_profile()))
    print(f"  sustainable: {'yes' if outcome.sustainable else 'NO'}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    schedulers = [s.strip() for s in args.schedulers.split(",")]

    def make(scheduler: str) -> ExperimentSpec:
        forged = argparse.Namespace(**vars(args))
        forged.scheduler = scheduler
        return _spec_for(forged)

    rows = compare_schedulers(make, schedulers)
    print(format_table(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis == "size-ratio":
        ratios = [int(v) for v in args.ratios.split(",")]
        rows = size_ratio_sweep(args.policy, ratios, scale=args.scale)
    elif args.axis == "utilization":
        points = [float(v) for v in args.points.split(",")]
        rows = utilization_sweep(_spec_for(args), points)
    elif args.axis == "partition-size":
        sizes = [float(v) for v in args.files_mib.split(",")]
        rows = partition_size_sweep(sizes, scale=args.scale)
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown sweep axis {args.axis!r}")
    print(format_table(rows))
    return 0


def _check_port(port: int) -> int:
    if not 1 <= port <= 65535:
        raise ReproError(
            f"port {port} is outside the valid TCP range 1-65535"
        )
    return port


def _admission_params(args: argparse.Namespace) -> dict:
    """Map CLI flags onto :func:`build_admission` keyword arguments."""
    mode = args.admission
    if mode == "stop":
        return dict(retry_after=args.retry_after_ms / 1000.0)
    if mode == "limit":
        return dict(
            rate_bytes_per_s=args.rate_mib * 2**20,
            retry_after=args.retry_after_ms / 1000.0,
        )
    if mode == "gradual":
        return dict(
            max_delay=args.max_delay_ms / 1000.0,
            threshold=args.threshold,
        )
    return {}


def _admission_from(args: argparse.Namespace):
    from .server import build_admission

    return build_admission(args.admission, **_admission_params(args))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .engine import LSMStore, StoreOptions
    from .memory import MemoryArbiter, MemoryBudget
    from .server import KVServer

    _check_port(args.port)
    memory_budget = _memory_budget_bytes(args)
    options = StoreOptions(
        memtable_bytes=int(args.memtable_mib * 2**20),
        policy=args.engine_policy,
        block_codec=args.block_codec,
        filter_kind=args.filter_kind,
        stall_mode=args.stall_mode,
        background_maintenance=(
            args.background or args.maintenance_threads > 1
        ),
        maintenance_threads=args.maintenance_threads,
        scrub_interval=args.scrub_interval,
        scrub_rate_bytes_per_s=int(args.scrub_rate_mib * 2**20),
        sync_writes=args.sync_writes,
        group_commit=args.group_commit,
    )

    async def run() -> None:
        with LSMStore.open(args.directory, options) as store:
            arbiter = None
            if memory_budget is not None:
                # Single-node deployment: the arbiter still earns its
                # keep by moving the write/read split with the workload.
                arbiter = MemoryArbiter(
                    MemoryBudget(memory_budget, 1),
                    [store],
                    obs=store.obs,
                    interval=args.memory_rebalance_interval,
                )
            server = KVServer(
                store,
                _admission_from(args),
                host=args.host,
                port=args.port,
                metrics_port=args.metrics_port,
                memory_arbiter=arbiter,
                memory_interval=args.memory_rebalance_interval,
                wire=args.wire,
            )
            async with server:
                host, port = server.address
                budget_note = (
                    f", memory budget: {args.memory_budget:g} MiB"
                    if memory_budget is not None
                    else ""
                )
                print(
                    f"serving {args.directory} on {host}:{port} "
                    f"(admission: {args.admission}, "
                    f"stall mode: {args.stall_mode}{budget_note})"
                )
                if server.metrics_address is not None:
                    mhost, mport = server.metrics_address
                    print(f"metrics on http://{mhost}:{mport}/metrics")
                await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    except OSError as error:
        print(f"error: cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .server import closed_loop, open_loop, two_phase as net_two_phase

    _check_port(args.port)
    if args.mode == "open" and args.rate <= 0:
        raise ReproError(
            f"--rate must be a positive arrival rate, got {args.rate}"
        )
    if args.clients < 1:
        raise ReproError(
            f"--clients must be at least 1, got {args.clients}"
        )
    if args.ops < 1:
        raise ReproError(f"--ops must be at least 1, got {args.ops}")
    common = dict(
        value_bytes=args.value_bytes,
        keyspace=args.keyspace,
        seed=args.seed,
        distribution=getattr(args, "distribution", "uniform"),
        theta=getattr(args, "theta", 0.99),
        client_options={"wire": args.wire},
    )

    async def run():
        if args.mode == "closed":
            return await closed_loop(
                args.host,
                args.port,
                clients=args.clients,
                ops_per_client=args.ops // max(1, args.clients),
                **common,
            )
        if args.mode == "open":
            return await open_loop(
                args.host,
                args.port,
                rate_ops_per_s=args.rate,
                total_ops=args.ops,
                **common,
            )
        return await net_two_phase(
            args.host,
            args.port,
            utilization=args.utilization,
            clients=args.clients,
            testing_ops_per_client=args.ops // max(1, args.clients),
            running_ops=args.ops,
            **common,
        )

    result = asyncio.run(run())
    print(result.summary())
    completed = (
        result.running.op_count
        if hasattr(result, "running")
        else result.op_count
    )
    return 0 if completed else 1


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import LocalCluster, build_cluster_admission
    from .engine import StoreOptions

    _check_port(args.port)
    if args.shards < 1:
        raise ReproError(
            f"--shards must be at least 1, got {args.shards}"
        )
    memory_budget = _memory_budget_bytes(args)
    options = StoreOptions(
        memtable_bytes=int(args.memtable_mib * 2**20),
        policy=args.engine_policy,
        block_codec=args.block_codec,
        filter_kind=args.filter_kind,
        stall_mode=args.stall_mode,
        background_maintenance=(
            args.background or args.maintenance_threads > 1
        ),
        maintenance_threads=args.maintenance_threads,
        scrub_interval=args.scrub_interval,
        scrub_rate_bytes_per_s=int(args.scrub_rate_mib * 2**20),
        sync_writes=args.sync_writes,
        group_commit=args.group_commit,
    )
    admission = build_cluster_admission(
        args.scope, args.admission, args.shards, **_admission_params(args)
    )

    _check_replication(args)

    async def run() -> None:
        cluster = LocalCluster(
            args.directory,
            num_shards=args.shards,
            options=options,
            admission=admission,
            arbiter=args.arbiter,
            pump_budget=args.pump_budget,
            host=args.host,
            port=args.port,
            metrics_port=args.metrics_port,
            replicas=args.replicas,
            ack_policy=args.ack_policy,
            read_from_replica=args.read_from_replica,
            memory_budget=memory_budget,
            memory_rebalance_interval=args.memory_rebalance_interval,
            repair_interval=args.repair_interval,
            wire=args.wire,
        )
        async with cluster:
            host, port = cluster.address
            replication = (
                f", {args.replicas} replica(s)/shard "
                f"under {args.ack_policy!r}"
                if args.replicas > 0
                else ""
            )
            budget_note = (
                f", memory budget: {args.memory_budget:g} MiB"
                if memory_budget is not None
                else ""
            )
            print(
                f"serving {args.shards}-shard cluster from "
                f"{args.directory} on {host}:{port} "
                f"(admission: {admission.mode}, arbiter: {args.arbiter}"
                f"{replication}{budget_note})"
            )
            assert cluster.router is not None
            if cluster.router.metrics_address is not None:
                mhost, mport = cluster.router.metrics_address
                print(f"metrics on http://{mhost}:{mport}/metrics")
            await cluster.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    except OSError as error:
        print(f"error: cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Dump/tail lifecycle events or scrape metrics off a live server."""
    import asyncio

    from .obs import Event, render_prometheus
    from .server import KVClient

    _check_port(args.port)

    def emit_events(view: dict, cursor: int) -> int:
        for wire in view["events"]:
            event = Event.from_wire(wire)
            cursor = max(cursor, event.seq)
            print(event.format())
        return cursor

    async def run() -> int:
        async with KVClient(args.host, args.port) as client:
            if args.action == "scrape":
                print(render_prometheus(await client.metrics()), end="")
                return 0
            view = await client.events(since=args.since, limit=args.limit)
            cursor = emit_events(view, args.since)
            if view["dropped"]:
                print(
                    f"# ring overflowed: {view['dropped']} older events "
                    "were dropped",
                    file=sys.stderr,
                )
            while args.action == "tail":
                await asyncio.sleep(args.interval_ms / 1000.0)
                cursor = emit_events(
                    await client.events(since=cursor), cursor
                )
            return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json
    from dataclasses import asdict

    from .engine import verify_store

    report = verify_store(args.directory, policy=args.policy)
    print(report.summary())
    if args.json_out is not None:
        payload = asdict(report)
        payload["clean"] = report.clean
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
    return 0 if report.clean else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    """Run one synchronous scrub pass over a store and report it."""
    import json

    from .engine import LSMStore, StoreOptions

    options = StoreOptions(
        block_cache_bytes=0,
        scrub_rate_bytes_per_s=int(args.scrub_rate_mib * 2**20),
    )
    with LSMStore.open(args.directory, options) as store:
        summary = store.scrub_pass()
        status = store.corruption_status()
    print(
        f"scrub pass: {summary['last_pass']['runs']} run(s), "
        f"{summary['last_pass']['blocks']} block(s), "
        f"{summary['last_pass']['bytes']} byte(s) verified, "
        f"{summary['last_pass']['findings']} finding(s)"
    )
    for entry in status["quarantined"]:
        print(
            f"quarantined: run {entry['run_id']} level {entry['level']} "
            f"({entry['reason']})"
        )
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                {"scrub": summary, "quarantined": status["quarantined"]},
                handle,
                indent=2,
            )
            handle.write("\n")
    return 0 if not status["quarantined"] else 1


def _cmd_crashsim(args: argparse.Namespace) -> int:
    from .faults import compressed_block_scenarios, run_crash_harness

    if args.ops < 2:
        raise ReproError(f"--ops must be at least 2, got {args.ops}")
    if args.mode == "blocks":
        # Corruption-at-rest only: flip bytes inside a compressed data
        # block and require detect -> quarantine with no wrong answers.
        report = compressed_block_scenarios(args.directory, seed=args.seed)
    else:
        report = run_crash_harness(
            args.directory, num_ops=args.ops, seed=args.seed
        )
    print(report.summary())
    return 0 if report.ok else 1


def _check_replication(args: argparse.Namespace) -> None:
    from .replication import ACK_POLICIES

    if args.replicas < 0:
        raise ReproError(
            f"--replicas cannot be negative, got {args.replicas}"
        )
    if args.ack_policy not in ACK_POLICIES:
        raise ReproError(
            f"--ack-policy must be one of {ACK_POLICIES}, "
            f"got {args.ack_policy!r}"
        )
    if args.read_from_replica and args.replicas == 0:
        raise ReproError(
            "--read-from-replica needs --replicas >= 1"
        )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .engine import StoreOptions
    from .faults import run_chaos, run_corruption_chaos

    if args.shards < 2:
        raise ReproError(
            f"--shards must be at least 2 (one to kill, one to "
            f"survive), got {args.shards}"
        )
    if not 0 <= args.kill_shard < args.shards:
        raise ReproError(
            f"--kill-shard {args.kill_shard} is outside "
            f"[0, {args.shards})"
        )
    _check_replication(args)
    options = None
    if args.group_commit:
        options = StoreOptions(
            block_cache_bytes=0,
            sync_writes=True,
            group_commit=True,
            # Keep the corruption runner's small-memtable/scrub shape so
            # its at-rest byte flips still land on live run files.
            **(
                dict(memtable_bytes=4096, scrub_interval=0.2)
                if args.corrupt_at_rest
                else {}
            ),
        )
    if args.corrupt_at_rest:
        if args.replicas < 1:
            raise ReproError(
                "--corrupt-at-rest needs --replicas >= 1 "
                "(repair is replica-backed)"
            )
        report = asyncio.run(
            run_corruption_chaos(
                args.directory,
                num_shards=args.shards,
                ops=args.ops,
                target_shard=args.kill_shard,
                corrupt_at=args.kill_at,
                seed=args.seed,
                op_interval=args.op_interval_ms / 1000.0,
                replicas=args.replicas,
                ack_policy=args.ack_policy,
                options=options,
            )
        )
        print(report.summary())
        if args.json_out is not None:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(), handle, indent=2)
                handle.write("\n")
        return 0 if report.ok else 1
    report = asyncio.run(
        run_chaos(
            args.directory,
            num_shards=args.shards,
            ops=args.ops,
            kill_shard=args.kill_shard,
            kill_at=args.kill_at,
            restore_at=args.restore_at,
            seed=args.seed,
            cooldown=args.cooldown_ms / 1000.0,
            op_interval=args.op_interval_ms / 1000.0,
            replicas=args.replicas,
            ack_policy=args.ack_policy,
            read_from_replica=args.read_from_replica,
            options=options,
        )
    )
    print(report.summary())
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
    return 0 if report.ok else 1


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy", choices=_POLICIES, default="tiering",
        help="merge policy (default: tiering)",
    )
    parser.add_argument(
        "--scheduler", default="greedy",
        help="runtime scheduler: single/fair/greedy/greedy-<k> "
             "(default: greedy)",
    )
    parser.add_argument(
        "--size-ratio", default=None,
        help="size ratio T (defaults: tiering 3, leveling 10)",
    )
    parser.add_argument(
        "--distribution", choices=("uniform", "zipf"), default="uniform",
        help="update key distribution (default: uniform)",
    )
    parser.add_argument(
        "--scale", type=float, default=256.0,
        help="testbed scale factor (default: 256)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.95,
        help="running-phase utilization (default: 0.95)",
    )
    parser.add_argument(
        "--testing-fix", action="store_true",
        help="apply the paper's testing-phase determinism fix "
             "(size-tiered / partitioned policies)",
    )


def _add_replication_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="WAL-shipping followers per shard (default: 0, i.e. "
             "unreplicated; chaos with replicas kills a leader and "
             "expects a promotion instead of a restore)",
    )
    parser.add_argument(
        "--ack-policy", choices=("leader_only", "quorum", "all"),
        default="leader_only",
        help="follower acks a write waits for before the client sees "
             "OK (default: leader_only)",
    )
    parser.add_argument(
        "--read-from-replica", action="store_true",
        help="let the router serve scans from followers, with "
             "staleness surfaced in the response",
    )


def _add_admission_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--admission", choices=("none", "stop", "limit", "gradual"),
        default="none",
        help="write admission mode (default: none)",
    )
    parser.add_argument(
        "--rate-mib", type=float, default=64.0,
        help="limit mode: admitted write budget in MiB/s (default: 64)",
    )
    parser.add_argument(
        "--retry-after-ms", type=float, default=50.0,
        help="stop/limit modes: client backoff hint (default: 50ms)",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=20.0,
        help="gradual mode: delay at full pressure (default: 20ms)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.5,
        help="gradual mode: pressure where delays start (default: 0.5)",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memtable-mib", type=float, default=4.0,
        help="engine memory component budget (default: 4 MiB)",
    )
    parser.add_argument(
        "--engine-policy", choices=("tiering", "leveling", "size-tiered"),
        default="tiering", help="engine merge policy (default: tiering)",
    )
    from .engine.blockcodec import available_codecs
    from .engine.filters import available_filters
    parser.add_argument(
        "--block-codec", choices=available_codecs(), default="none",
        help="per-block compression for new sorted runs (default: "
             "none); existing runs keep reading and merges rewrite "
             "them under the new codec",
    )
    parser.add_argument(
        "--filter-kind", choices=available_filters(), default="bloom",
        help="point-filter implementation for new runs (default: "
             "bloom; cuckoo supports deletion)",
    )
    parser.add_argument(
        "--stall-mode", choices=("block", "reject"), default="reject",
        help="engine stall gate behaviour (default: reject — the "
             "admission layer, not the engine, absorbs stalls)",
    )
    parser.add_argument(
        "--background", action="store_true",
        help="run engine maintenance on background workers",
    )
    parser.add_argument(
        "--maintenance-threads", type=int, default=1,
        help="background flush/merge workers per store "
             "(>1 implies --background)",
    )
    parser.add_argument(
        "--scrub-interval", type=float, default=0.0,
        help="seconds between background integrity-scrub passes over "
             "the live runs (default: 0, disabled); scrub I/O is "
             "debited against the maintenance rate budget",
    )
    parser.add_argument(
        "--scrub-rate-mib", type=float, default=0.0,
        help="additional dedicated scrub throttle in MiB/s "
             "(default: 0, unthrottled beyond the shared budget)",
    )
    parser.add_argument(
        "--sync-writes", action="store_true",
        help="fsync the WAL before acknowledging each write "
             "(default: rely on OS buffering)",
    )
    parser.add_argument(
        "--group-commit", action="store_true",
        help="coalesce concurrent writers into one WAL write+fsync "
             "per group (amortizes --sync-writes; see "
             "docs/engine-concurrency.md)",
    )


def _add_memory_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget", type=float, default=None, metavar="MIB",
        help="adaptive memory arbitration: one global budget (MiB) "
             "split between memtables and block caches and rebalanced "
             "from observed pressure (default: disabled — static "
             "--memtable-mib sizing applies)",
    )
    parser.add_argument(
        "--memory-rebalance-interval", type=float, default=1.0,
        help="seconds between memory-arbiter rebalance checks "
             "(default: 1.0)",
    )


def _memory_budget_bytes(args: argparse.Namespace) -> int | None:
    """Validate the memory flags; returns the budget in bytes, if set."""
    if args.memory_rebalance_interval <= 0:
        raise ReproError(
            f"--memory-rebalance-interval must be positive, got "
            f"{args.memory_rebalance_interval}"
        )
    if args.memory_budget is None:
        return None
    if args.memory_budget <= 0:
        raise ReproError(
            f"--memory-budget must be a positive MiB figure, got "
            f"{args.memory_budget}"
        )
    return int(args.memory_budget * 2**20)


def _add_wire_arg(
    parser: argparse.ArgumentParser, default: str = "binary"
) -> None:
    parser.add_argument(
        "--wire", choices=("binary", "json"), default=default,
        help="wire encoding for hot verbs (default: %(default)s); "
             "servers in binary mode still accept legacy JSON clients",
    )


def _add_loadgen_args(
    parser: argparse.ArgumentParser, default_distribution: str = "uniform"
) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7379)
    _add_wire_arg(parser)
    parser.add_argument(
        "--mode", choices=("closed", "open", "two-phase"),
        default="two-phase",
        help="load shape (default: the paper's two-phase methodology)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent closed-loop clients (default: 4)",
    )
    parser.add_argument(
        "--ops", type=int, default=2000,
        help="total operations per phase (default: 2000)",
    )
    parser.add_argument(
        "--rate", type=float, default=500.0,
        help="open mode: arrivals per second (default: 500)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.95,
        help="two-phase mode: running-phase fraction of the measured "
             "max (default: 0.95, the paper's setting)",
    )
    parser.add_argument(
        "--distribution", choices=("uniform", "zipf"),
        default=default_distribution,
        help="key popularity (default: %(default)s); zipf concentrates "
             "traffic onto hot keys and therefore hot shards",
    )
    parser.add_argument(
        "--theta", type=float, default=0.99,
        help="zipf skew parameter (default: 0.99, the YCSB setting)",
    )
    parser.add_argument("--value-bytes", type=int, default=100)
    parser.add_argument("--keyspace", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Two-phase LSM write-stall evaluation "
                    "(Luo & Carey, PVLDB 2019 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    two_phase_cmd = commands.add_parser(
        "two-phase", help="run the full testing+running methodology"
    )
    _add_common(two_phase_cmd)
    two_phase_cmd.set_defaults(handler=_cmd_two_phase)

    compare_cmd = commands.add_parser(
        "compare", help="compare schedulers at identical arrivals"
    )
    _add_common(compare_cmd)
    compare_cmd.add_argument(
        "--schedulers", default="single,fair,greedy",
        help="comma-separated scheduler list",
    )
    compare_cmd.set_defaults(handler=_cmd_compare)

    sweep_cmd = commands.add_parser(
        "sweep", help="parameter sweeps (figures 11, 24, 27)"
    )
    sweep_cmd.add_argument(
        "axis", choices=("size-ratio", "utilization", "partition-size")
    )
    _add_common(sweep_cmd)
    sweep_cmd.add_argument("--ratios", default="2,4,6,10")
    sweep_cmd.add_argument("--points", default="0.5,0.7,0.8,0.9,0.95")
    sweep_cmd.add_argument("--files-mib", default="8,64,512,4096")
    sweep_cmd.set_defaults(handler=_cmd_sweep)

    verify_cmd = commands.add_parser(
        "verify", help="audit a storage-engine directory's integrity"
    )
    verify_cmd.add_argument("directory", help="LSMStore data directory")
    verify_cmd.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the full report as JSON to this file",
    )
    verify_cmd.add_argument(
        "--policy", default=None,
        choices=["leveling", "tiering", "size-tiered"],
        help="merge policy the store ran with; 'leveling' additionally "
        "enforces the partitioned-level no-overlap invariant",
    )
    verify_cmd.set_defaults(handler=_cmd_verify)

    scrub_cmd = commands.add_parser(
        "scrub",
        help="run one synchronous integrity-scrub pass over a store's "
             "live runs; exits non-zero if anything was quarantined",
    )
    scrub_cmd.add_argument("directory", help="LSMStore data directory")
    scrub_cmd.add_argument(
        "--scrub-rate-mib", type=float, default=0.0,
        help="dedicated scrub throttle in MiB/s (default: unthrottled)",
    )
    scrub_cmd.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the scrub summary as JSON to this file",
    )
    scrub_cmd.set_defaults(handler=_cmd_scrub)

    crashsim_cmd = commands.add_parser(
        "crashsim",
        help="crash-recovery harness: WAL truncation sweep + "
             "injected-fault scenarios + compressed-block corruption",
    )
    crashsim_cmd.add_argument(
        "directory", help="scratch directory for crash images"
    )
    crashsim_cmd.add_argument(
        "--ops", type=int, default=500,
        help="workload length for the WAL sweep (default: 500)",
    )
    crashsim_cmd.add_argument("--seed", type=int, default=0)
    crashsim_cmd.add_argument(
        "--mode", choices=("all", "blocks"), default="all",
        help="'blocks' runs only the compressed-block at-rest "
             "corruption sweep (default: the full battery)",
    )
    crashsim_cmd.set_defaults(handler=_cmd_crashsim)

    chaos_cmd = commands.add_parser(
        "chaos",
        help="kill a shard mid-load against a local cluster and "
             "score degradation + recovery",
    )
    chaos_cmd.add_argument(
        "directory", help="scratch directory for the cluster"
    )
    chaos_cmd.add_argument(
        "--shards", type=int, default=3,
        help="number of shard engines (default: 3)",
    )
    chaos_cmd.add_argument(
        "--ops", type=int, default=300,
        help="writes in the main load phase (default: 300)",
    )
    chaos_cmd.add_argument(
        "--kill-shard", type=int, default=0,
        help="which shard's backend dies (default: 0)",
    )
    chaos_cmd.add_argument(
        "--kill-at", type=float, default=0.25,
        help="kill point as a fraction of --ops (default: 0.25)",
    )
    chaos_cmd.add_argument(
        "--restore-at", type=float, default=0.6,
        help="restore point as a fraction of --ops (default: 0.6)",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument(
        "--cooldown-ms", type=float, default=250.0,
        help="circuit-breaker open→half-open cooldown (default: 250)",
    )
    chaos_cmd.add_argument(
        "--op-interval-ms", type=float, default=2.0,
        help="pacing sleep between ops (default: 2)",
    )
    _add_replication_args(chaos_cmd)
    chaos_cmd.add_argument(
        "--corrupt-at-rest", action="store_true",
        help="instead of killing a backend, flip at-rest bytes in the "
             "target shard leader's run files mid-load and score "
             "detection, quarantine, replica-backed repair, and the "
             "zero-wrong-answers audit (needs --replicas >= 1; "
             "--kill-shard/--kill-at pick the target and the point)",
    )
    chaos_cmd.add_argument(
        "--group-commit", action="store_true",
        help="run every shard engine with sync_writes + group commit, "
             "so the zero-lost-acked-writes audit covers grouped WAL "
             "fsyncs",
    )
    chaos_cmd.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the full report as JSON to this file",
    )
    chaos_cmd.set_defaults(handler=_cmd_chaos)

    serve_cmd = commands.add_parser(
        "serve", help="serve an LSMStore over TCP with admission control"
    )
    serve_cmd.add_argument("directory", help="LSMStore data directory")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7379)
    serve_cmd.add_argument(
        "--metrics-port", type=int, default=None,
        help="expose Prometheus text metrics over HTTP on this port "
             "(0 picks a free port; default: disabled)",
    )
    _add_wire_arg(serve_cmd)
    _add_admission_args(serve_cmd)
    _add_engine_args(serve_cmd)
    _add_memory_args(serve_cmd)
    serve_cmd.set_defaults(handler=_cmd_serve)

    cluster_serve_cmd = commands.add_parser(
        "cluster-serve",
        help="serve a sharded multi-engine cluster behind one router",
    )
    cluster_serve_cmd.add_argument(
        "directory", help="cluster root directory (one subdir per shard)"
    )
    cluster_serve_cmd.add_argument("--host", default="127.0.0.1")
    cluster_serve_cmd.add_argument("--port", type=int, default=7379)
    cluster_serve_cmd.add_argument(
        "--metrics-port", type=int, default=None,
        help="expose the cluster-wide Prometheus roll-up over HTTP on "
             "this port (0 picks a free port; default: disabled)",
    )
    cluster_serve_cmd.add_argument(
        "--shards", type=int, default=4,
        help="number of shard engines (default: 4)",
    )
    cluster_serve_cmd.add_argument(
        "--scope", choices=("global", "local"), default="local",
        help="admission scope: does one stalled shard backpressure "
             "every write (global) or only its own key range (local)? "
             "(default: local)",
    )
    cluster_serve_cmd.add_argument(
        "--arbiter", choices=("fair", "greedy"), default="fair",
        help="shared maintenance-budget arbiter across shards "
             "(default: fair)",
    )
    cluster_serve_cmd.add_argument(
        "--pump-budget", type=int, default=None,
        help="maintenance pump calls shared per round "
             "(default: one per shard)",
    )
    cluster_serve_cmd.add_argument(
        "--repair-interval", type=float, default=0.0,
        help="seconds between leader checks for quarantined runs to "
             "rebuild from a follower (default: 0, disabled; needs "
             "--replicas >= 1 to have anything to rebuild from)",
    )
    _add_wire_arg(cluster_serve_cmd)
    _add_admission_args(cluster_serve_cmd)
    _add_engine_args(cluster_serve_cmd)
    _add_memory_args(cluster_serve_cmd)
    _add_replication_args(cluster_serve_cmd)
    cluster_serve_cmd.set_defaults(handler=_cmd_cluster_serve)

    obs_cmd = commands.add_parser(
        "obs",
        help="observability: dump/tail lifecycle events or scrape "
             "metrics from a running server or cluster router",
    )
    obs_cmd.add_argument(
        "action", choices=("dump", "tail", "scrape"),
        help="dump: print the event ring once; tail: follow it; "
             "scrape: print the metrics snapshot as Prometheus text",
    )
    obs_cmd.add_argument("--host", default="127.0.0.1")
    obs_cmd.add_argument("--port", type=int, default=7379)
    obs_cmd.add_argument(
        "--since", type=int, default=-1,
        help="only events with a larger sequence number (default: all)",
    )
    obs_cmd.add_argument(
        "--limit", type=int, default=None,
        help="at most this many events (tail/cluster: the most recent)",
    )
    obs_cmd.add_argument(
        "--interval-ms", type=float, default=500.0,
        help="tail polling interval (default: 500)",
    )
    obs_cmd.set_defaults(handler=_cmd_obs)

    loadgen_cmd = commands.add_parser(
        "loadgen", help="drive a running server with network load"
    )
    _add_loadgen_args(loadgen_cmd)
    loadgen_cmd.set_defaults(handler=_cmd_loadgen)

    cluster_loadgen_cmd = commands.add_parser(
        "cluster-loadgen",
        help="drive a cluster router with (optionally skewed) load",
    )
    _add_loadgen_args(cluster_loadgen_cmd, default_distribution="zipf")
    cluster_loadgen_cmd.set_defaults(handler=_cmd_loadgen)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
