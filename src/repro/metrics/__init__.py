"""Measurement utilities: percentiles, windowed series, fluid queue curves.

This package is a leaf dependency shared by the simulator, the harness and
the benchmarks. Nothing in here knows about LSM-trees; it only knows about
time series, latency samples and FIFO fluid queues.
"""

from .curves import CumulativeCurve, fifo_latencies
from .percentiles import (
    STANDARD_PERCENTILES,
    LatencyReservoir,
    percentile,
    percentile_profile,
    weighted_percentile_profile,
)
from .series import SeriesPoint, StepSeries, WindowedCounter, stall_windows

__all__ = [
    "CumulativeCurve",
    "LatencyReservoir",
    "STANDARD_PERCENTILES",
    "SeriesPoint",
    "StepSeries",
    "WindowedCounter",
    "fifo_latencies",
    "percentile",
    "percentile_profile",
    "stall_windows",
    "weighted_percentile_profile",
]
