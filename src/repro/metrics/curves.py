"""Fluid arrival/departure curves and FIFO latency extraction.

The running phase of the two-phase methodology measures *write latency* in
an open system: queuing time plus processing time. This reproduction models
the write path as a fluid (see ``repro.sim``): writes arrive at a
piecewise-constant rate and are drained by the LSM-tree at a
piecewise-constant processing rate. Under FIFO service, the latency of the
``n``-th write is exactly

    latency(n) = D^{-1}(n) - A^{-1}(n)

where ``A`` and ``D`` are the cumulative arrival and departure curves. Both
curves are piecewise linear and non-decreasing, so their inverses are
computed by linear interpolation between breakpoints. This yields *exact*
per-write latencies for the fluid model — no sampling noise — which is what
lets benchmark assertions about percentile latencies be deterministic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SimulationError


class CumulativeCurve:
    """A non-decreasing piecewise-linear cumulative count over time.

    Breakpoints are appended in time order with ``extend(t, total)``,
    meaning "the cumulative count reached ``total`` at time ``t``, growing
    linearly since the previous breakpoint".
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._times: list[float] = [start_time]
        self._totals: list[float] = [0.0]

    @property
    def final_time(self) -> float:
        """Time of the last breakpoint."""
        return self._times[-1]

    @property
    def final_total(self) -> float:
        """Cumulative count at the last breakpoint."""
        return self._totals[-1]

    def extend(self, time: float, total: float) -> None:
        """Append a breakpoint; time and total must be non-decreasing."""
        if time < self._times[-1]:
            raise SimulationError(
                f"curve breakpoint time went backwards: {time} < {self._times[-1]}"
            )
        if total < self._totals[-1] - 1e-9:
            raise SimulationError(
                f"cumulative total decreased: {total} < {self._totals[-1]}"
            )
        total = max(total, self._totals[-1])
        if time == self._times[-1]:
            # Vertical jumps are not physical for a fluid; coalesce.
            self._totals[-1] = total
            return
        self._times.append(time)
        self._totals.append(total)

    def advance(self, time: float, amount: float) -> None:
        """Append a breakpoint ``amount`` above the current total."""
        self.extend(time, self._totals[-1] + amount)

    def inverse(self, counts: np.ndarray) -> np.ndarray:
        """First-attainment time of each cumulative count.

        Returns ``inf{t : curve(t) >= c}`` for each count ``c`` — the
        correct FIFO semantics for both arrival curves (a flat run means
        nothing arrived; later counts arrive after the gap) and departure
        curves (a flat run is a stall; later counts depart strictly after
        it). Computed by interpolating only within the curve's *rising*
        segments: flat runs contribute no interior points, so they can
        neither hide a stall (interpolating across it) nor smear a
        trailing idle period back over earlier departures.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.size and (counts.min() < 0 or counts.max() > self.final_total + 1e-6):
            raise ConfigurationError("count out of the curve's range")
        totals = np.asarray(self._totals)
        times = np.asarray(self._times)
        rising = np.nonzero(totals[1:] > totals[:-1])[0]
        if rising.size == 0:
            return np.full(counts.shape, times[0])
        seg_start_total = totals[rising]
        seg_end_total = totals[rising + 1]
        seg_start_time = times[rising]
        seg_end_time = times[rising + 1]
        # Segment end-totals are strictly increasing; find, per count, the
        # first segment whose end reaches it.
        idx = np.searchsorted(seg_end_total, counts, side="left")
        idx = np.minimum(idx, rising.size - 1)
        span = seg_end_total[idx] - seg_start_total[idx]
        fraction = np.clip(
            (counts - seg_start_total[idx]) / span, 0.0, 1.0
        )
        return seg_start_time[idx] + fraction * (
            seg_end_time[idx] - seg_start_time[idx]
        )

    def value_at(self, times: np.ndarray) -> np.ndarray:
        """Cumulative count at each queried time (linear interpolation)."""
        return np.interp(
            np.asarray(times, dtype=np.float64),
            np.asarray(self._times),
            np.asarray(self._totals),
        )


def fifo_latencies(
    arrivals: CumulativeCurve,
    departures: CumulativeCurve,
    max_samples: int = 200_000,
    skip_fraction: float = 0.0,
) -> np.ndarray:
    """Per-write latencies for a FIFO fluid queue.

    Samples up to ``max_samples`` write indices uniformly across all
    *departed* writes and returns ``D^{-1}(n) - A^{-1}(n)`` for each. With
    ``skip_fraction > 0`` the earliest writes are excluded, mirroring the
    paper's exclusion of the initial warm-up period.
    """
    if not 0.0 <= skip_fraction < 1.0:
        raise ConfigurationError("skip_fraction must be within [0, 1)")
    completed = min(arrivals.final_total, departures.final_total)
    if completed <= 0:
        raise SimulationError("no writes completed; cannot compute latencies")
    lo = completed * skip_fraction
    count = int(min(max_samples, max(1, completed - lo)))
    indices = np.linspace(lo, completed, num=count, endpoint=False)
    latencies = departures.inverse(indices) - arrivals.inverse(indices)
    # Numerical jitter can produce tiny negatives when the queue is empty.
    return np.maximum(latencies, 0.0)
