"""Exact and streaming percentile computation over latency samples.

The paper reports percentile write/query latencies (50%, 90%, 99%, 99.9%).
Experiments in this reproduction are deterministic simulations, so we keep
*exact* samples whenever feasible (:class:`LatencyReservoir` with an
unbounded mode) and fall back to uniform reservoir sampling for very long
runs. Percentiles use the "higher" interpolation (nearest rank from
above): the reported value is an actual observed sample, and tail
percentiles are conservative. The previous "lower" interpolation
systematically under-reported the tail on small sample counts — with 100
samples, "P99" was really P98 — which is exactly the statistic this
reproduction exists to get right.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError

#: The percentile levels reported throughout the paper's figures.
STANDARD_PERCENTILES: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)


def percentile(samples: Sequence[float] | np.ndarray, q: float) -> float:
    """Return the ``q``-th percentile of ``samples`` as an observed value.

    ``q`` is expressed in percent (0-100). Raises
    :class:`~repro.errors.ConfigurationError` when ``samples`` is empty or
    ``q`` is out of range, rather than silently returning NaN.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q={q} must be within [0, 100]")
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot take a percentile of zero samples")
    return float(np.percentile(arr, q, method="higher"))


def percentile_profile(
    samples: Sequence[float] | np.ndarray,
    levels: Iterable[float] = STANDARD_PERCENTILES,
) -> dict[float, float]:
    """Return ``{level: value}`` for each percentile level in ``levels``."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot take percentiles of zero samples")
    levels = tuple(levels)
    values = np.percentile(arr, levels, method="higher")
    return {level: float(value) for level, value in zip(levels, values)}


def weighted_percentile_profile(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    levels: Iterable[float] = STANDARD_PERCENTILES,
) -> dict[float, float]:
    """Percentiles of a weighted sample set.

    Used for fluid-model latencies, where each sample stands for a mass
    of writes (or queries) rather than a single observation: the ``q``-th
    percentile is the smallest value whose cumulative weight share
    reaches ``q``.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.size == 0 or values.shape != weights.shape:
        raise ConfigurationError(
            "weighted percentiles need matching, non-empty values/weights"
        )
    if (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError("weights must be non-negative with mass")
    order = np.argsort(values)
    values = values[order]
    cumulative = np.cumsum(weights[order])
    cumulative /= cumulative[-1]
    result = {}
    for level in tuple(levels):
        if not 0.0 <= level <= 100.0:
            raise ConfigurationError(f"percentile level {level} out of range")
        index = int(np.searchsorted(cumulative, level / 100.0))
        result[level] = float(values[min(index, values.size - 1)])
    return result


class LatencyReservoir:
    """Collects latency samples with an optional uniform-sampling cap.

    With ``capacity=None`` (default) every sample is kept and percentiles
    are exact. With a finite capacity the reservoir keeps a uniform random
    subset using Vitter's algorithm R, driven by an explicit
    :class:`numpy.random.Generator` so simulations stay reproducible.
    """

    def __init__(
        self,
        capacity: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("reservoir capacity must be positive")
        self._capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._samples: list[float] = []
        self._seen = 0

    @property
    def count(self) -> int:
        """Total number of samples offered to the reservoir."""
        return self._seen

    def add(self, value: float) -> None:
        """Record one latency sample (seconds)."""
        self._seen += 1
        if self._capacity is None or len(self._samples) < self._capacity:
            self._samples.append(float(value))
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self._capacity:
            self._samples[slot] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        """Record many latency samples."""
        for value in values:
            self.add(value)

    def samples(self) -> np.ndarray:
        """Return the retained samples as an array (copy)."""
        return np.asarray(self._samples, dtype=np.float64)

    def percentile(self, q: float) -> float:
        """Exact-or-sampled percentile of the retained samples."""
        return percentile(self._samples, q)

    def profile(
        self, levels: Iterable[float] = STANDARD_PERCENTILES
    ) -> dict[float, float]:
        """Percentile profile (see :func:`percentile_profile`)."""
        return percentile_profile(self._samples, levels)

    def mean(self) -> float:
        """Arithmetic mean of the retained samples."""
        if not self._samples:
            raise ConfigurationError("cannot take the mean of zero samples")
        return float(np.mean(self._samples))

    def maximum(self) -> float:
        """Largest retained sample."""
        if not self._samples:
            raise ConfigurationError("cannot take the max of zero samples")
        return float(np.max(self._samples))
