"""Windowed time-series recording for instantaneous throughput plots.

Most figures in the paper plot *instantaneous write throughput*, averaged
over 30-second windows, against simulated time. :class:`WindowedCounter`
accumulates fluid event counts (e.g. entries written) into fixed-width
windows of virtual time; :class:`StepSeries` records piecewise-constant
state (e.g. the number of disk components) and can be resampled onto a
window grid for plotting and shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SeriesPoint:
    """A single ``(time, value)`` sample of a time series."""

    time: float
    value: float


class WindowedCounter:
    """Accumulates a fluid count into fixed-width windows of virtual time.

    ``add(t0, t1, amount)`` spreads ``amount`` uniformly over the interval
    ``[t0, t1)`` — the natural operation for a fluid simulation where, say,
    1234 entries were written at a constant rate between two events. Point
    increments use ``add(t, t, amount)``.
    """

    def __init__(self, window: float = 30.0) -> None:
        if window <= 0:
            raise ConfigurationError("window width must be positive")
        self._window = window
        self._totals: dict[int, float] = {}

    @property
    def window(self) -> float:
        """Window width in (virtual) seconds."""
        return self._window

    def add(self, t0: float, t1: float, amount: float) -> None:
        """Spread ``amount`` uniformly over ``[t0, t1)`` (or at ``t0``)."""
        if t1 < t0:
            raise ConfigurationError(f"interval [{t0}, {t1}) is reversed")
        if amount == 0.0:
            return
        first = int(t0 // self._window)
        if t1 == t0:
            self._totals[first] = self._totals.get(first, 0.0) + amount
            return
        last = int(t1 // self._window)
        if first == last:
            self._totals[first] = self._totals.get(first, 0.0) + amount
            return
        rate = amount / (t1 - t0)
        for idx in range(first, last + 1):
            lo = max(t0, idx * self._window)
            hi = min(t1, (idx + 1) * self._window)
            if hi > lo:
                self._totals[idx] = self._totals.get(idx, 0.0) + rate * (hi - lo)

    def rates(self, until: float | None = None) -> list[SeriesPoint]:
        """Per-window average rates (amount per second).

        Returns one point per window from time zero through the last
        recorded window (or through ``until``), with the point's time at
        the window start. Windows with no activity report a rate of 0 —
        a write stall must show up as a zero, not a gap.
        """
        if not self._totals and until is None:
            return []
        last = max(self._totals) if self._totals else -1
        if until is not None:
            last = max(last, int(until // self._window) - 1)
        return [
            SeriesPoint(idx * self._window, self._totals.get(idx, 0.0) / self._window)
            for idx in range(0, last + 1)
        ]

    def rate_values(self, until: float | None = None) -> np.ndarray:
        """The per-window rates as a bare array (for shape assertions)."""
        return np.asarray([p.value for p in self.rates(until)], dtype=np.float64)

    def total(self) -> float:
        """Total accumulated amount across all windows."""
        return float(sum(self._totals.values()))


class StepSeries:
    """Records a piecewise-constant state variable over virtual time.

    Used for "number of disk components over time" plots. ``record(t, v)``
    states that the variable has value ``v`` from time ``t`` until the next
    record. Queries are by resampling onto a uniform grid or by extrema.
    """

    def __init__(self) -> None:
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Record that the state changed to ``value`` at ``time``."""
        if self._times and time < self._times[-1]:
            raise ConfigurationError(
                f"state recorded out of order: {time} < {self._times[-1]}"
            )
        if self._times and time == self._times[-1]:
            self._values[-1] = float(value)
            return
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def points(self) -> list[SeriesPoint]:
        """All recorded change-points in time order."""
        return [SeriesPoint(t, v) for t, v in zip(self._times, self._values)]

    def value_at(self, time: float) -> float:
        """The state value in effect at ``time``."""
        if not self._times or time < self._times[0]:
            raise ConfigurationError(f"no state recorded at or before t={time}")
        idx = int(np.searchsorted(self._times, time, side="right")) - 1
        return self._values[idx]

    def resample(self, start: float, stop: float, step: float) -> np.ndarray:
        """Sample the step function on ``arange(start, stop, step)``."""
        if step <= 0:
            raise ConfigurationError("resample step must be positive")
        grid = np.arange(start, stop, step)
        return np.asarray([self.value_at(t) for t in grid], dtype=np.float64)

    def maximum(self) -> float:
        """Largest value ever recorded."""
        if not self._values:
            raise ConfigurationError("no state recorded")
        return max(self._values)

    def minimum(self) -> float:
        """Smallest value ever recorded."""
        if not self._values:
            raise ConfigurationError("no state recorded")
        return min(self._values)

    def time_average(self, start: float, stop: float) -> float:
        """Time-weighted mean of the step function over ``[start, stop]``."""
        if stop <= start:
            raise ConfigurationError("time_average interval is empty")
        total = 0.0
        for (t0, v), t1 in zip(
            zip(self._times, self._values), self._times[1:] + [stop]
        ):
            lo, hi = max(t0, start), min(t1, stop)
            if hi > lo:
                total += v * (hi - lo)
        return total / (stop - start)


def stall_windows(rates: Iterable[float], threshold_fraction: float = 0.05) -> int:
    """Count throughput windows that qualify as write stalls.

    A window is a stall when its rate falls below ``threshold_fraction`` of
    the series' mean rate — the operational definition this reproduction
    uses when a figure says "write stalls have occurred". (The mean, not
    the median: a closed loop that stalls half the time has a median of
    zero, which would hide exactly the behaviour being detected.)
    """
    values = np.asarray(list(rates), dtype=np.float64)
    if values.size == 0:
        return 0
    cutoff = float(np.mean(values)) * threshold_fraction
    return int(np.sum(values < cutoff))
