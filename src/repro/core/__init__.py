"""The paper's core contribution: merge policies, schedulers, and the
analytic LSM cost model, expressed over abstract component metadata so the
same logic drives both the discrete-event simulator (``repro.sim``) and
the real storage engine (``repro.engine``)."""

from . import model
from .components import (
    Component,
    MergeDescriptor,
    TreeSnapshot,
    UidAllocator,
)
from .policies import (
    LazyLevelingPolicy,
    LevelingPolicy,
    MergePolicy,
    PartitionedLevelingPolicy,
    SizeTieredPolicy,
    TieringPolicy,
)
from .schedulers import (
    ComponentConstraint,
    FairScheduler,
    GlobalComponentConstraint,
    GreedyScheduler,
    LevelZeroConstraint,
    LocalComponentConstraint,
    MergeScheduler,
    RateLimitControl,
    SingleThreadedScheduler,
    SlowdownControl,
    SpringGearControl,
    SpringGearScheduler,
    StopControl,
    WriteControl,
)

__all__ = [
    "Component",
    "LazyLevelingPolicy",
    "ComponentConstraint",
    "FairScheduler",
    "GlobalComponentConstraint",
    "GreedyScheduler",
    "LevelZeroConstraint",
    "LevelingPolicy",
    "LocalComponentConstraint",
    "MergeDescriptor",
    "MergePolicy",
    "MergeScheduler",
    "PartitionedLevelingPolicy",
    "RateLimitControl",
    "SingleThreadedScheduler",
    "SizeTieredPolicy",
    "SlowdownControl",
    "SpringGearControl",
    "SpringGearScheduler",
    "StopControl",
    "TieringPolicy",
    "TreeSnapshot",
    "UidAllocator",
    "WriteControl",
    "model",
]
