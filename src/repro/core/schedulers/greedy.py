"""The greedy scheduler (Section 5.1.5, Figure 7): smallest merge first.

The paper's proposed scheduler: allocate the *entire* I/O bandwidth budget
to the merge operation with the fewest remaining input bytes (the
remaining-input-pages approximation of "smallest remaining work", Fig. 7
line 12). Theorem 2 shows this minimizes the number of disk components at
every instant for a fixed set of merges, which both reduces write stalls
and improves query performance. Larger merges may be temporarily starved;
the paper argues that is acceptable — even desirable — at run time, but
disqualifies the greedy scheduler from the testing phase, where starved
large merges inflate the measured throughput unsustainably.

``concurrency`` generalizes to the smallest-``k`` extension from the end
of Section 5.1.5: when one merge cannot saturate the device, run the ``k``
smallest merges concurrently with an even split among them.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigurationError
from ..components import MergeDescriptor, TreeSnapshot
from .base import MergeScheduler


class GreedyScheduler(MergeScheduler):
    """Full budget to the merge with the fewest remaining input bytes."""

    name = "greedy"

    def __init__(self, concurrency: int = 1) -> None:
        if concurrency < 1:
            raise ConfigurationError("greedy concurrency must be at least 1")
        self._concurrency = concurrency

    @property
    def concurrency(self) -> int:
        """``k``: how many smallest merges run concurrently."""
        return self._concurrency

    def allocate(
        self,
        merges: Sequence[MergeDescriptor],
        budget: float,
        tree: TreeSnapshot | None = None,
    ) -> dict[int, float]:
        self._check(merges, budget)
        if not merges:
            return {}
        # Ties broken by uid for determinism (older merge wins).
        chosen = sorted(merges, key=lambda m: (m.remaining_input_bytes, m.uid))
        chosen = chosen[: self._concurrency]
        share = budget / len(chosen)
        return {merge.uid: share for merge in chosen}

    def __repr__(self) -> str:
        return f"GreedyScheduler(concurrency={self._concurrency})"
