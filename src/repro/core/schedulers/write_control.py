"""Interaction with writes: stop, slow down, or rate-limit (Section 5.1.2).

When the component constraint is violated, writes *must* stall — that part
is not negotiable; it is what keeps the tree stable. The design choice is
what to do *before* violation. The paper's Theorem 1 proves that
processing writes as quickly as possible minimizes every write's latency,
so the recommended control is :class:`StopControl` (full speed until the
constraint trips). :class:`SlowdownControl` reproduces LevelDB's graceful
degradation between a slowdown and a stop threshold, and
:class:`RateLimitControl` reproduces the "Limit" variant of the burst
experiment (Figure 13), both of which trade smoother throughput for larger
queuing latencies.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ...errors import ConfigurationError
from ..components import MergeDescriptor, TreeSnapshot
from .constraints import ComponentConstraint


class WriteControl(ABC):
    """Computes the currently admissible in-memory write rate."""

    #: Human-readable control name for reports.
    name: str = "abstract"

    @abstractmethod
    def admission_rate(
        self,
        tree: TreeSnapshot,
        constraint: ComponentConstraint,
        merges: Sequence[MergeDescriptor] = (),
        allocation: Mapping[int, float] | None = None,
        now: float = 0.0,
    ) -> float:
        """Maximum in-memory write rate (entries/s) permitted right now.

        ``math.inf`` means unthrottled: writes proceed at whatever speed
        memory allows. ``0.0`` means stalled. Executors additionally stop
        writes when no memory component has room, regardless of this
        value. ``merges`` and ``allocation`` describe the in-flight merge
        operations and their current bandwidth split, for controls (such
        as bLSM's spring) whose throttle tracks merge progress; most
        controls ignore them.
        """


class StopControl(WriteControl):
    """Process writes as quickly as possible; hard-stop on violation.

    The paper's recommendation (Theorem 1): any delay added before the
    constraint trips only increases queuing latency.
    """

    name = "stop"

    def admission_rate(
        self,
        tree: TreeSnapshot,
        constraint: ComponentConstraint,
        merges: Sequence[MergeDescriptor] = (),
        allocation: Mapping[int, float] | None = None,
        now: float = 0.0,
    ) -> float:
        return 0.0 if constraint.is_violated(tree) else math.inf


class RateLimitControl(WriteControl):
    """A fixed ceiling on the in-memory write rate (Fig. 13's "Limit").

    Still stops entirely on constraint violation; below that, writes are
    admitted at no more than ``limit`` entries/second even when the tree
    could absorb more.
    """

    name = "rate-limit"

    def __init__(self, limit: float) -> None:
        if limit <= 0 or not math.isfinite(limit):
            raise ConfigurationError("rate limit must be finite positive")
        self._limit = limit

    @property
    def limit(self) -> float:
        """The configured ceiling in entries/second."""
        return self._limit

    def admission_rate(
        self,
        tree: TreeSnapshot,
        constraint: ComponentConstraint,
        merges: Sequence[MergeDescriptor] = (),
        allocation: Mapping[int, float] | None = None,
        now: float = 0.0,
    ) -> float:
        return 0.0 if constraint.is_violated(tree) else self._limit

    def __repr__(self) -> str:
        return f"RateLimitControl(limit={self._limit})"


class SlowdownControl(WriteControl):
    """Graceful degradation between a slowdown and the stop threshold.

    Models LevelDB's L0 write throttle: full speed while constraint
    headroom exceeds ``start_fraction``, then a linear ramp from
    ``base_rate`` down to zero as headroom shrinks. ``base_rate`` stands
    in for the unthrottled in-memory write speed and only shapes the ramp;
    the executor still caps admission by its own memory write rate.
    """

    name = "slowdown"

    def __init__(self, base_rate: float, start_fraction: float = 0.33) -> None:
        if base_rate <= 0 or not math.isfinite(base_rate):
            raise ConfigurationError("base_rate must be finite positive")
        if not 0.0 < start_fraction <= 1.0:
            raise ConfigurationError("start_fraction must be in (0, 1]")
        self._base_rate = base_rate
        self._start_fraction = start_fraction

    def admission_rate(
        self,
        tree: TreeSnapshot,
        constraint: ComponentConstraint,
        merges: Sequence[MergeDescriptor] = (),
        allocation: Mapping[int, float] | None = None,
        now: float = 0.0,
    ) -> float:
        if constraint.is_violated(tree):
            return 0.0
        headroom = constraint.headroom(tree)
        if headroom >= self._start_fraction:
            return math.inf
        return self._base_rate * headroom / self._start_fraction

    def __repr__(self) -> str:
        return (
            f"SlowdownControl(base_rate={self._base_rate}, "
            f"start_fraction={self._start_fraction})"
        )
