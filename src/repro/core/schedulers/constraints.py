"""Component constraints: when must in-memory writes be stalled.

The first design choice of a merge scheduler (Section 4.1 / 5.1.1): an
upper bound on how many disk components may accumulate before the LSM-tree
stops admitting writes. A *global* constraint bounds the total count
across all levels; a *local* constraint bounds each level separately (bLSM
allows two per level). The paper argues — and Figure 12 shows — that
global constraints absorb leveling's inherent merge-time variance better
and therefore minimize write stalls; this reproduction implements both,
plus the level-0-only constraint LevelDB uses for partitioned trees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ...errors import ConfigurationError
from ..components import TreeSnapshot


class ComponentConstraint(ABC):
    """Predicate over tree snapshots: is the component budget exhausted?"""

    #: Human-readable constraint name for reports.
    name: str = "abstract"

    @abstractmethod
    def is_violated(self, tree: TreeSnapshot) -> bool:
        """True when writes must be stalled until merges catch up."""

    @abstractmethod
    def headroom(self, tree: TreeSnapshot) -> float:
        """Components that may still accumulate before violation, as a
        fraction of the constraint's budget (0 = violated, 1 = empty
        tree). Used by graceful write-slowdown controls."""


class GlobalComponentConstraint(ComponentConstraint):
    """At most ``limit`` disk components across all levels.

    The paper's recommended configuration, sized at twice the expected
    component count of the merge policy
    (:func:`repro.core.model.default_component_limit`).
    """

    name = "global"

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError("global component limit must be >= 1")
        self._limit = limit

    @property
    def limit(self) -> int:
        """Maximum tolerated total component count."""
        return self._limit

    def is_violated(self, tree: TreeSnapshot) -> bool:
        return tree.count() >= self._limit

    def headroom(self, tree: TreeSnapshot) -> float:
        return max(0.0, (self._limit - tree.count()) / self._limit)

    def __repr__(self) -> str:
        return f"GlobalComponentConstraint(limit={self._limit})"


class LocalComponentConstraint(ComponentConstraint):
    """At most ``per_level`` components on any single level.

    bLSM's choice (two per level). Levels whose merges are slow block the
    whole tree even when other levels have plenty of room — the effect
    Figure 12 quantifies.
    """

    name = "local"

    def __init__(self, per_level: int) -> None:
        if per_level < 1:
            raise ConfigurationError("per-level component limit must be >= 1")
        self._per_level = per_level

    @property
    def per_level(self) -> int:
        """Maximum tolerated component count on each level."""
        return self._per_level

    def is_violated(self, tree: TreeSnapshot) -> bool:
        return any(tree.count_at(level) >= self._per_level for level in tree.levels())

    def headroom(self, tree: TreeSnapshot) -> float:
        if not tree.levels():
            return 1.0
        worst = max(tree.count_at(level) for level in tree.levels())
        return max(0.0, (self._per_level - worst) / self._per_level)

    def __repr__(self) -> str:
        return f"LocalComponentConstraint(per_level={self._per_level})"


class LevelZeroConstraint(ComponentConstraint):
    """Bound only the number of level-0 (flushed) components.

    LevelDB's stop trigger for partitioned trees (Section 6.1): writes
    stop when 12 flushed components have accumulated; partitioned levels
    are bounded by their byte targets instead and never trip the count.
    """

    name = "level0"

    def __init__(self, stop: int) -> None:
        if stop < 1:
            raise ConfigurationError("level-0 stop threshold must be >= 1")
        self._stop = stop

    @property
    def stop(self) -> int:
        """The level-0 component count at which writes stop."""
        return self._stop

    def is_violated(self, tree: TreeSnapshot) -> bool:
        return tree.count_at(0) >= self._stop

    def headroom(self, tree: TreeSnapshot) -> float:
        return max(0.0, (self._stop - tree.count_at(0)) / self._stop)

    def __repr__(self) -> str:
        return f"LevelZeroConstraint(stop={self._stop})"
