"""Merge scheduler interface: dividing I/O bandwidth among merges.

A merge scheduler implements the paper's fourth design choice (Section
4.1, "I/O Bandwidth Allocation"): given the set of in-flight merge
operations and the I/O bandwidth budget, decide how many bytes per second
each merge may consume right now. The executor re-invokes
:meth:`MergeScheduler.allocate` at every state change (merge scheduled,
merge completed, flush started or finished), so allocations are
piecewise-constant over time — which is exactly how the fluid simulator
integrates them.

The remaining two runtime design choices — the component constraint and
the interaction with writes — live in sibling modules
(:mod:`.constraints`, :mod:`.write_control`); a complete runtime
configuration is the triple (scheduler, constraint, write control).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ...errors import SchedulerError
from ..components import MergeDescriptor, TreeSnapshot

#: Allocation: merge uid -> bandwidth in bytes/second.
Allocation = Mapping[int, float]


class MergeScheduler(ABC):
    """Allocates the I/O bandwidth budget among in-flight merges."""

    #: Human-readable scheduler name used in reports and metrics.
    name: str = "abstract"

    @abstractmethod
    def allocate(
        self,
        merges: Sequence[MergeDescriptor],
        budget: float,
        tree: TreeSnapshot | None = None,
    ) -> dict[int, float]:
        """Return bytes/second per merge uid; the sum must not exceed
        ``budget``. Merges absent from the mapping (or mapped to 0) are
        paused. ``tree`` is provided for schedulers whose allocation
        depends on tree state (bLSM's spring-and-gear)."""

    @staticmethod
    def _check(merges: Sequence[MergeDescriptor], budget: float) -> None:
        if budget <= 0:
            raise SchedulerError(f"bandwidth budget must be positive, got {budget}")
        seen: set[int] = set()
        for merge in merges:
            if merge.uid in seen:
                raise SchedulerError(f"merge {merge.uid} listed twice")
            seen.add(merge.uid)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
