"""bLSM's spring-and-gear merge scheduler (Section 2.3, Figure 4).

bLSM [Sears & Ramakrishnan, SIGMOD'12] couples the progress of adjacent
levels: the rate at which a new component ``C_i`` forms (``in_i``) is
geared to the progress of merging the previous ``C'_i`` into ``C_{i+1}``
(``out_i``), and the in-memory write rate is throttled so that the memory
component fills no faster than it can be absorbed downstream. The effect
is a *bounded processing latency* — writes are never blocked for long —
but, as Section 4.2 demonstrates, the processing *rate* still varies with
the size of the downstream component (fast right after ``C_1`` is swapped
out, slower as it fills), so under a high arrival rate the queuing latency
balloons anyway.

Two cooperating classes reproduce this:

* :class:`SpringGearScheduler` divides the bandwidth budget between the
  flush-absorbing merge (targeting level 1) and the deeper merges so that
  each level's ``out`` keeps pace with its ``in``.
* :class:`SpringGearControl` throttles the admission rate to the speed at
  which the level-1 merge is consuming fresh level-0 data — the "spring"
  that replaces hard write stalls with graceful slowdown.

bLSM's own component constraint is local — at most two components per
level — which is how the evaluation in Section 4.2 configures it.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ...errors import ConfigurationError
from ..components import MergeDescriptor, TreeSnapshot
from .base import MergeScheduler
from .constraints import ComponentConstraint
from .write_control import WriteControl


class SpringGearScheduler(MergeScheduler):
    """Progress-coupled bandwidth allocation across merge levels.

    Each active merge targeting level ``i+1`` receives weight proportional
    to how far the formation of the new level-``i`` component has run
    ahead of it (``in_i - out_i``), so lagging levels get more bandwidth —
    the "gear" coupling of Figure 4.
    """

    name = "spring-gear"

    def __init__(self, level_capacity_bytes: Mapping[int, float], gain: float = 2.0) -> None:
        if gain <= 0:
            raise ConfigurationError("gear gain must be positive")
        for level, capacity in level_capacity_bytes.items():
            if capacity <= 0:
                raise ConfigurationError(f"capacity of level {level} must be positive")
        self._capacity = dict(level_capacity_bytes)
        self._gain = gain

    def _fill_fraction(self, tree: TreeSnapshot, level: int) -> float:
        """How full the *forming* (non-merging) component at a level is."""
        capacity = self._capacity.get(level)
        if capacity is None:
            return 0.5  # unknown capacity: neutral weight
        forming = sum(c.size_bytes for c in tree.mergeable(level))
        return min(1.0, forming / capacity)

    def allocate(
        self,
        merges: Sequence[MergeDescriptor],
        budget: float,
        tree: TreeSnapshot | None = None,
    ) -> dict[int, float]:
        self._check(merges, budget)
        if not merges:
            return {}
        if len(merges) == 1 or tree is None:
            return {merges[0].uid: budget} if len(merges) == 1 else {
                merge.uid: budget / len(merges) for merge in merges
            }
        weights: dict[int, float] = {}
        for merge in merges:
            source = merge.target_level - 1
            lag = self._fill_fraction(tree, source) - merge.progress
            weights[merge.uid] = max(0.05, 0.5 + self._gain * lag)
        total = sum(weights.values())
        return {uid: budget * weight / total for uid, weight in weights.items()}

    def __repr__(self) -> str:
        return f"SpringGearScheduler(gain={self._gain})"


class SpringGearControl(WriteControl):
    """Throttle writes so every level's ``in_i`` tracks its ``out_i``.

    Figure 4's springs, applied at every level:

    * **Level 0 gear** — the admissible in-memory write rate equals the
      rate at which the active level-0 absorbing merge consumes fresh
      (level-0) bytes, so the memory component never runs ahead of the
      tree's ability to absorb it.
    * **Deeper gears** — while ``C'_i`` is being merged into ``C_{i+1}``,
      the *formation* of the new ``C_i`` may proceed no faster than that
      merge's progress: allowed ingest is the merge's fractional progress
      rate times the level-``i`` capacity. Without this gear the new
      ``C_1`` fills long before the big ``C_2`` merge completes and the
      tree hard-blocks for the merge's whole duration — exactly the
      extended blocking bLSM exists to prevent. With it, writes *crawl*
      during deep merges (bounded per-write processing latency) and surge
      right after (the Figure 6a peaks).

    When no gearing merge is active, writes are unthrottled.
    """

    name = "spring-gear"

    def __init__(
        self,
        entry_bytes: float,
        level_capacity_bytes: Mapping[int, float] | None = None,
    ) -> None:
        if entry_bytes <= 0:
            raise ConfigurationError("entry size must be positive")
        self._entry_bytes = entry_bytes
        self._capacity = dict(level_capacity_bytes or {})
        for level, capacity in self._capacity.items():
            if capacity <= 0:
                raise ConfigurationError(
                    f"capacity of level {level} must be positive"
                )

    def admission_rate(
        self,
        tree: TreeSnapshot,
        constraint: ComponentConstraint,
        merges: Sequence[MergeDescriptor] = (),
        allocation: Mapping[int, float] | None = None,
        now: float = 0.0,
    ) -> float:
        if constraint.is_violated(tree):
            return 0.0
        if allocation is None:
            return math.inf
        rate = math.inf
        for merge in merges:
            bandwidth = allocation.get(merge.uid, 0.0)
            total = merge.input_bytes
            if total <= 0:
                continue
            if merge.target_level == 1:
                # level-0 gear: ingest at the fresh-byte consumption rate
                fresh = sum(
                    c.size_bytes for c in merge.inputs if c.level == 0
                )
                consumption = bandwidth * (fresh / total) / self._entry_bytes
                rate = min(rate, max(consumption, 1e-9))
            else:
                # deeper gear: the forming C_{target-1} tracks this
                # merge's fractional progress
                capacity = self._capacity.get(merge.target_level - 1)
                if capacity is None:
                    continue
                progress_rate = bandwidth / total
                allowed = progress_rate * capacity / self._entry_bytes
                rate = min(rate, max(allowed, 1e-9))
        return rate

    def __repr__(self) -> str:
        return (
            f"SpringGearControl(entry_bytes={self._entry_bytes}, "
            f"levels={sorted(self._capacity)})"
        )
