"""The single-threaded scheduler: one merge at a time, FIFO.

LevelDB executes all merges on one background thread (Section 4.1). For
full merges the paper shows this is insufficient: while a large merge
runs, flushed components pile up exponentially (Section 5.1.3's
``T**i`` analysis), producing long write stalls. For partitioned merges,
where every merge is small, it is sufficient — provided the measured
throughput is sustainable (Section 6).
"""

from __future__ import annotations

from typing import Sequence

from ..components import MergeDescriptor, TreeSnapshot
from .base import MergeScheduler


class SingleThreadedScheduler(MergeScheduler):
    """Runs merges strictly one at a time, in scheduling order."""

    name = "single"

    def allocate(
        self,
        merges: Sequence[MergeDescriptor],
        budget: float,
        tree: TreeSnapshot | None = None,
    ) -> dict[int, float]:
        self._check(merges, budget)
        if not merges:
            return {}
        # A real single thread never preempts: keep running the merge it
        # started, which is the one with the lowest uid among those that
        # have made progress; otherwise the oldest scheduled.
        started = [m for m in merges if m.progress > 0.0]
        current = min(started or merges, key=lambda m: m.uid)
        return {current.uid: budget}
