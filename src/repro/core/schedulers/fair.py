"""The fair scheduler: split bandwidth evenly across all active merges.

The heuristic used by Cassandra, HBase, and RocksDB (Section 5.1.4): every
in-flight merge proceeds at ``budget / n``. No merge starves, all levels
make steady progress — which is why the paper recommends it for the
*testing phase* — but it does not minimize the number of components over
time, so under leveling's inherent merge-time variance it leaves write
stalls on the table at run time (Figure 10).
"""

from __future__ import annotations

from typing import Sequence

from ..components import MergeDescriptor, TreeSnapshot
from .base import MergeScheduler


class FairScheduler(MergeScheduler):
    """Even split of the I/O budget across in-flight merges."""

    name = "fair"

    def allocate(
        self,
        merges: Sequence[MergeDescriptor],
        budget: float,
        tree: TreeSnapshot | None = None,
    ) -> dict[int, float]:
        self._check(merges, budget)
        if not merges:
            return {}
        share = budget / len(merges)
        return {merge.uid: share for merge in merges}
