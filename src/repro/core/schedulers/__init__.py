"""Merge schedulers and the runtime design choices of Section 4.1.

A complete runtime configuration is a triple:

* a :class:`MergeScheduler` (bandwidth allocation),
* a :class:`ComponentConstraint` (when writes must stall),
* a :class:`WriteControl` (how writes behave before the stall).
"""

from .base import Allocation, MergeScheduler
from .blsm import SpringGearControl, SpringGearScheduler
from .constraints import (
    ComponentConstraint,
    GlobalComponentConstraint,
    LevelZeroConstraint,
    LocalComponentConstraint,
)
from .fair import FairScheduler
from .greedy import GreedyScheduler
from .single import SingleThreadedScheduler
from .write_control import (
    RateLimitControl,
    SlowdownControl,
    StopControl,
    WriteControl,
)

__all__ = [
    "Allocation",
    "ComponentConstraint",
    "FairScheduler",
    "GlobalComponentConstraint",
    "GreedyScheduler",
    "LevelZeroConstraint",
    "LocalComponentConstraint",
    "MergeScheduler",
    "RateLimitControl",
    "SingleThreadedScheduler",
    "SlowdownControl",
    "SpringGearControl",
    "SpringGearScheduler",
    "StopControl",
    "WriteControl",
]
