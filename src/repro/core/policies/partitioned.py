"""LevelDB-style partitioned leveling with a score-based trigger (Section 6).

Level 0 holds whole flushed components (each covering the full key range);
levels 1 and above are range-partitioned into files of bounded size. The
policy computes a score per level — flushed-component count over the
minimum mergeable count for level 0, total bytes over the level's target
bytes for partitioned levels — and schedules a merge for the highest score
of at least 1 (LevelDB's ``VersionSet::PickCompaction``). Only one merge
runs at a time, matching LevelDB's single background compaction thread.

Two file-selection strategies are implemented for partitioned levels:
``round-robin`` (LevelDB: remember where the previous compaction at the
level ended and continue from there) and ``choose-best`` (pick the file
with the fewest overlapping files at the next level, [Thonangi & Yang]).

The paper's sustainability fix (Section 6.2) is ``l0_exact=True``: merge
*exactly* ``l0_min_merge`` level-0 components during the testing phase so
measured throughput reflects the tree's expected shape (Figure 22a) rather
than the inflated elastic shape (Figure 22b).
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigurationError
from ..components import Component, MergeDescriptor, TreeSnapshot, UidAllocator
from .base import MergePolicy


class PartitionedLevelingPolicy(MergePolicy):
    """Score-driven partitioned leveling a la LevelDB.

    Parameters
    ----------
    size_ratio:
        ``T`` between partitioned level targets.
    levels:
        Number of partitioned levels (1-based); level ``levels`` is the
        last and never merges further down.
    level1_target_bytes:
        Target byte size of level 1 (paper: 1280 MB = 10 memory components).
    max_file_bytes:
        Partition-file size cap (paper default: 64 MB). Executors split
        merge outputs on this boundary.
    l0_min_merge:
        Minimum flushed components for a level-0 merge (LevelDB: 4).
    l0_exact:
        When True, level-0 merges take exactly ``l0_min_merge`` components
        (the testing-phase fix); when False they take all available
        (LevelDB's elastic behaviour).
    selection:
        ``"round-robin"`` or ``"choose-best"`` file selection.
    """

    name = "partitioned-leveling"

    def __init__(
        self,
        size_ratio: float,
        levels: int,
        level1_target_bytes: float,
        max_file_bytes: float,
        l0_min_merge: int = 4,
        l0_exact: bool = False,
        selection: str = "round-robin",
    ) -> None:
        if size_ratio <= 1:
            raise ConfigurationError("size ratio must exceed 1")
        if levels < 1:
            raise ConfigurationError("need at least one partitioned level")
        if level1_target_bytes <= 0 or max_file_bytes <= 0:
            raise ConfigurationError("byte targets must be positive")
        if l0_min_merge < 1:
            raise ConfigurationError("l0_min_merge must be at least 1")
        if selection not in ("round-robin", "choose-best"):
            raise ConfigurationError(f"unknown selection strategy {selection!r}")
        self._size_ratio = size_ratio
        self._levels = levels
        self._level1_target = level1_target_bytes
        self._max_file_bytes = max_file_bytes
        self._l0_min = l0_min_merge
        self._l0_exact = l0_exact
        self._selection = selection
        # Round-robin cursor per level: normalized key where the previous
        # compaction from that level ended.
        self._cursors: dict[int, float] = {}

    @property
    def max_file_bytes(self) -> float:
        """Partition-file size cap used when splitting merge outputs."""
        return self._max_file_bytes

    @property
    def levels(self) -> int:
        """Number of partitioned levels."""
        return self._levels

    @property
    def size_ratio(self) -> float:
        """The size ratio ``T``."""
        return self._size_ratio

    @property
    def l0_min_merge(self) -> int:
        """Minimum flushed components for a level-0 merge."""
        return self._l0_min

    @property
    def l0_exact(self) -> bool:
        """True when the exact-``T0`` testing fix is enabled."""
        return self._l0_exact

    @property
    def selection(self) -> str:
        """The configured file-selection strategy."""
        return self._selection

    def with_l0_exact(self, enabled: bool) -> "PartitionedLevelingPolicy":
        """A copy of this policy with the level-0 fix toggled."""
        return PartitionedLevelingPolicy(
            size_ratio=self._size_ratio,
            levels=self._levels,
            level1_target_bytes=self._level1_target,
            max_file_bytes=self._max_file_bytes,
            l0_min_merge=self._l0_min,
            l0_exact=enabled,
            selection=self._selection,
        )

    def level_target_bytes(self, level: int) -> float:
        """Target byte size of partitioned level ``level`` (1-based)."""
        if not 1 <= level <= self._levels:
            raise ConfigurationError(f"level {level} outside 1..{self._levels}")
        return self._level1_target * self._size_ratio ** (level - 1)

    def output_level_capacity(self, level: int) -> float | None:
        if 1 <= level <= self._levels:
            return self.level_target_bytes(level)
        return None

    def expected_components(self) -> int:
        # L0 at its minimum trigger plus one file set per partitioned
        # level; only used for reporting (partitioned trees constrain the
        # level-0 count, not the total).
        total_files = sum(
            int(self.level_target_bytes(level) / self._max_file_bytes) + 1
            for level in range(1, self._levels + 1)
        )
        return self._l0_min + total_files

    def scores(self, tree: TreeSnapshot) -> dict[int, float]:
        """Per-level compaction scores (LevelDB's ``Finalize``)."""
        result = {0: tree.count_at(0) / float(self._l0_min)}
        for level in range(1, self._levels):
            result[level] = tree.bytes_at(level) / self.level_target_bytes(level)
        return result

    def _pick_file(self, tree: TreeSnapshot, level: int) -> Component | None:
        """Choose the next file to merge from a partitioned level."""
        candidates = tree.mergeable(level)
        if not candidates:
            return None
        if self._selection == "round-robin":
            cursor = self._cursors.get(level, 0.0)
            after = [c for c in candidates if c.key_lo >= cursor]
            pool = after if after else candidates
            return min(pool, key=lambda c: c.key_lo)
        # choose-best: fewest overlapping files at the next level.
        def overlap_count(component: Component) -> int:
            return len(
                tree.overlapping(level + 1, component.key_lo, component.key_hi)
            )

        return min(candidates, key=lambda c: (overlap_count(c), c.key_lo))

    def select_merges(
        self,
        tree: TreeSnapshot,
        uids: UidAllocator,
        active: Sequence[MergeDescriptor] = (),
    ) -> list[MergeDescriptor]:
        if active:
            return []  # LevelDB runs a single compaction at a time
        scores = self.scores(tree)
        best_level, best_score = max(
            scores.items(), key=lambda item: (item[1], -item[0])
        )
        if best_score < 1.0:
            return []
        if best_level == 0:
            flushed = tree.mergeable(0)
            if len(flushed) < self._l0_min:
                return []
            chosen = flushed[: self._l0_min] if self._l0_exact else flushed
            lo = min(c.key_lo for c in chosen)
            hi = max(c.key_hi for c in chosen)
            inputs = chosen + tree.overlapping(1, lo, hi)
            if any(c.merging for c in inputs):
                return []
            return [
                MergeDescriptor(
                    uid=uids.next(), inputs=inputs, target_level=1, reason="L0"
                )
            ]
        picked = self._pick_file(tree, best_level)
        if picked is None:
            return []
        overlapping = tree.overlapping(best_level + 1, picked.key_lo, picked.key_hi)
        if any(c.merging for c in overlapping):
            return []
        self._cursors[best_level] = picked.key_hi if picked.key_hi < 1.0 else 0.0
        return [
            MergeDescriptor(
                uid=uids.next(),
                inputs=[picked] + overlapping,
                target_level=best_level + 1,
                reason=f"L{best_level}",
            )
        ]

    def __repr__(self) -> str:
        return (
            f"PartitionedLevelingPolicy(T={self._size_ratio}, L={self._levels}, "
            f"file={self._max_file_bytes / 2**20:.0f}MB, "
            f"selection={self._selection!r}, l0_exact={self._l0_exact})"
        )
