"""The leveling merge policy (Figure 2a).

One component per on-disk level; level ``i`` holds up to ``M * T**i``
entries. Freshly flushed components accumulate at level 0 and are merged
— all currently mergeable level-0 runs together — into the level-1
component. When a level's component exceeds its capacity it is merged
into the next level's component. Because flushed runs may pile up at
level 0 while level 1 is busy, and because a fresh level-1 component may
start forming while the old one is still merging into level 2 (bLSM's
``C1`` / ``C1'`` situation), the component count varies — exactly the
variance the paper's global component constraint is designed to absorb.

The *dynamic level size* optimization (Section 5.2.3, citing RocksDB's
space-amplification work) pins the last level's capacity to the dataset's
unique-entry footprint and derives the intermediate capacities by dividing
by ``T``, keeping the largest level nearly full across size-ratio sweeps.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigurationError
from ..components import MergeDescriptor, TreeSnapshot, UidAllocator
from .base import MergePolicy


class LevelingPolicy(MergePolicy):
    """Classic leveling with optional dynamic level sizing.

    Parameters
    ----------
    size_ratio:
        ``T``; each level is ``T`` times the previous one's capacity.
    levels:
        Number of on-disk levels ``L`` (level 0 excluded: level 0 is the
        landing zone for flushed components, not a sized level).
    memory_bytes:
        Memory component budget ``M`` in bytes; level ``i``'s capacity is
        ``M * T**i`` unless dynamic sizing is enabled.
    last_level_bytes:
        When set, enables dynamic level sizing: the last level's capacity
        is this value and level ``i``'s capacity is
        ``last_level_bytes / T**(L - i)``.
    """

    name = "leveling"

    def __init__(
        self,
        size_ratio: float,
        levels: int,
        memory_bytes: float,
        last_level_bytes: float | None = None,
    ) -> None:
        if size_ratio <= 1:
            raise ConfigurationError("leveling size ratio must exceed 1")
        if levels < 1:
            raise ConfigurationError("leveling needs at least one disk level")
        if memory_bytes <= 0:
            raise ConfigurationError("memory budget must be positive")
        if last_level_bytes is not None and last_level_bytes <= 0:
            raise ConfigurationError("last_level_bytes must be positive")
        self._size_ratio = size_ratio
        self._levels = levels
        self._memory_bytes = memory_bytes
        self._last_level_bytes = last_level_bytes

    @property
    def size_ratio(self) -> float:
        """The size ratio ``T``."""
        return self._size_ratio

    @property
    def levels(self) -> int:
        """The number of on-disk levels ``L``."""
        return self._levels

    def level_capacity_bytes(self, level: int) -> float:
        """Capacity of on-disk level ``level`` (1-based) in bytes."""
        if not 1 <= level <= self._levels:
            raise ConfigurationError(f"level {level} outside 1..{self._levels}")
        if self._last_level_bytes is not None:
            return self._last_level_bytes / self._size_ratio ** (self._levels - level)
        return self._memory_bytes * self._size_ratio**level

    def output_level_capacity(self, level: int) -> float | None:
        if 1 <= level <= self._levels:
            return self.level_capacity_bytes(level)
        return None

    def expected_components(self) -> int:
        return self._levels

    def select_merges(
        self,
        tree: TreeSnapshot,
        uids: UidAllocator,
        active: Sequence[MergeDescriptor] = (),
    ) -> list[MergeDescriptor]:
        busy_targets = {merge.target_level for merge in active}
        merges: list[MergeDescriptor] = []
        # Level 0 -> 1: gather every mergeable flushed run plus the
        # level-1 component if it is free. Batching all queued flushes
        # into one merge is how catch-up happens after a busy period. If
        # the old level-1 component is itself merging into level 2, a
        # fresh level-1 component is formed from the flushed runs alone.
        flushed = tree.mergeable(0)
        level1_forming = sum(c.size_bytes for c in tree.mergeable(1))
        if (
            flushed
            and 1 not in busy_targets
            and level1_forming < self.level_capacity_bytes(1)
        ):
            # Absorb exactly one flushed run per merge (classic leveling:
            # the level-1 component is re-merged once per flush, which is
            # what the T/2-merges-per-level cost model assumes). Batching
            # a variable number of runs would make the policy
            # non-deterministic — the closed-system testing phase would
            # then measure an amortized-cheap catch-up regime whose
            # throughput the open-system running phase cannot sustain,
            # the same trap Sections 5.3 and 6.2 expose for size-tiered
            # and partitioned trees. Level 1 must also be under capacity:
            # an over-full level 1 merges down first, or every further
            # absorption rewrites it again and amplification snowballs.
            inputs = flushed[:1] + tree.mergeable(1)
            merges.append(
                MergeDescriptor(
                    uid=uids.next(), inputs=inputs, target_level=1, reason="L0->L1"
                )
            )
            busy_targets.add(1)
        # Level i -> i+1 for overfull levels. The last level never merges
        # further: its size is bounded by the unique-entry footprint.
        for level in range(1, self._levels):
            residents = tree.level(level)
            if not residents or any(c.merging for c in residents):
                continue
            if level + 1 in busy_targets:
                continue
            size = sum(c.size_bytes for c in residents)
            if size < self.level_capacity_bytes(level):
                continue
            inputs = residents + tree.mergeable(level + 1)
            merges.append(
                MergeDescriptor(
                    uid=uids.next(),
                    inputs=inputs,
                    target_level=level + 1,
                    reason=f"L{level}->L{level + 1}",
                )
            )
            busy_targets.add(level + 1)
        return merges

    def __repr__(self) -> str:
        return (
            f"LevelingPolicy(T={self._size_ratio}, L={self._levels}, "
            f"dynamic={self._last_level_bytes is not None})"
        )
