"""Merge policy interface.

A merge policy decides *which* components to merge (Section 2.1); it never
executes I/O and never decides bandwidth. Executors (the simulator's LSM
tree or the storage engine's compaction driver) call
:meth:`MergePolicy.select_merges` whenever the component set changes — a
flush landed, or a merge completed — and the policy returns zero or more
new :class:`~repro.core.components.MergeDescriptor` objects whose inputs
are disjoint from every in-flight merge (components already merging are
marked and must not be re-selected).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..components import MergeDescriptor, TreeSnapshot, UidAllocator


class MergePolicy(ABC):
    """Decides which disk components to merge, and where the output goes."""

    #: Human-readable policy name used in reports and metrics.
    name: str = "abstract"

    @abstractmethod
    def select_merges(
        self,
        tree: TreeSnapshot,
        uids: UidAllocator,
        active: Sequence[MergeDescriptor] = (),
    ) -> list[MergeDescriptor]:
        """Return new merges to start given the current tree snapshot.

        ``active`` lists the in-flight merges, which the policy needs in
        order to respect per-level exclusivity (e.g. not produce two
        concurrent merges whose outputs land on the same level).
        Implementations must only select components whose ``merging`` flag
        is clear; constructing a :class:`MergeDescriptor` sets the flag, so
        a second call with the same snapshot returns no duplicates.
        """

    @abstractmethod
    def expected_components(self) -> int:
        """Steady-state number of disk components this policy maintains.

        Used to size the global component constraint (the paper's
        "twice the expected number of disk components").
        """

    def output_level_capacity(self, level: int) -> float | None:
        """Byte capacity of ``level``, if the policy defines one.

        Partitioned policies use this to decide when a level overflows;
        policies without per-level byte targets return ``None``.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
