"""Lazy leveling: tiering at intermediate levels, leveling at the last.

An extension beyond the paper's four policies (it appears in the paper's
related-work survey as Dayan & Idreos's *Dostoevsky* design): intermediate
levels behave like tiering — up to ``T`` components each, merged together
once full — while the last level behaves like leveling — a single
component that arriving runs merge into. The result keeps most of
tiering's write throughput (entries are copied once per intermediate
level) while offering leveling's point-lookup and space behaviour at the
largest level, where most data lives.

Including it demonstrates that the scheduler framework of the paper —
constraints, write controls, fair/greedy bandwidth allocation — is policy
agnostic: the ablation benchmark runs lazy leveling through the identical
two-phase harness.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigurationError
from ..components import MergeDescriptor, TreeSnapshot, UidAllocator
from .base import MergePolicy


class LazyLevelingPolicy(MergePolicy):
    """Dostoevsky-style hybrid: tiered runs on top, one sorted run below.

    Parameters
    ----------
    size_ratio:
        ``T``: components per intermediate level, and the growth factor.
    levels:
        On-disk levels, numbered 0..levels-1; the last is the leveled one.
    """

    name = "lazy-leveling"

    def __init__(self, size_ratio: int, levels: int) -> None:
        if size_ratio < 2:
            raise ConfigurationError("lazy leveling needs a size ratio >= 2")
        if levels < 2:
            raise ConfigurationError(
                "lazy leveling needs at least two levels (tiered + leveled)"
            )
        self._size_ratio = int(size_ratio)
        self._levels = levels

    @property
    def size_ratio(self) -> int:
        """The size ratio ``T``."""
        return self._size_ratio

    @property
    def levels(self) -> int:
        """The number of on-disk levels."""
        return self._levels

    def expected_components(self) -> int:
        # T runs per intermediate level plus the single last-level run.
        return self._size_ratio * (self._levels - 1) + 1

    def select_merges(
        self,
        tree: TreeSnapshot,
        uids: UidAllocator,
        active: Sequence[MergeDescriptor] = (),
    ) -> list[MergeDescriptor]:
        busy_sources = {
            component.level for merge in active for component in merge.inputs
        }
        last = self._levels - 1
        merges: list[MergeDescriptor] = []
        for level in range(0, last):
            if level in busy_sources:
                continue  # one merge per level, as for tiering
            candidates = tree.mergeable(level)
            if len(candidates) < self._size_ratio:
                continue
            inputs = candidates[: self._size_ratio]
            if level + 1 == last:
                # Merging into the leveled last level absorbs its
                # resident component too (a leveling-style merge).
                if any(c.merging for c in tree.level(last)):
                    continue
                inputs = inputs + tree.mergeable(last)
            merges.append(
                MergeDescriptor(
                    uid=uids.next(),
                    inputs=inputs,
                    target_level=min(level + 1, last),
                    reason=f"lazy-L{level}",
                )
            )
            busy_sources.add(level)
        return merges

    def __repr__(self) -> str:
        return f"LazyLevelingPolicy(T={self._size_ratio}, L={self._levels})"
