"""Merge policies: which components to merge (Figure 2, Sections 5-6)."""

from .base import MergePolicy
from .lazy_leveling import LazyLevelingPolicy
from .leveling import LevelingPolicy
from .partitioned import PartitionedLevelingPolicy
from .size_tiered import SizeTieredPolicy
from .tiering import TieringPolicy

__all__ = [
    "LazyLevelingPolicy",
    "LevelingPolicy",
    "MergePolicy",
    "PartitionedLevelingPolicy",
    "SizeTieredPolicy",
    "TieringPolicy",
]
