"""The size-tiered merge policy used in practice (Section 5.3, Figure 18).

BigTable/HBase-style tiering does not organize components into explicit
levels; it keeps one age-ordered sequence of components and schedules a
merge whenever a component is at most ``T`` times the total size of the
components younger than it within a candidate window. The policy tries to
merge as many components as possible at once (up to ``max_merge``), which
makes it *non-deterministic* in the paper's sense: the merges it schedules
depend on how many flushed components have piled up, so a closed-system
testing phase measures an inflated, unsustainable write throughput.

The paper's fix (Section 5.3) is reproduced with ``always_min=True``:
during the testing phase the policy merges exactly ``min_merge``
components, which measures the conservative lower-bound throughput; at
runtime the elastic behaviour is re-enabled to absorb bursts.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigurationError
from ..components import Component, MergeDescriptor, TreeSnapshot, UidAllocator
from .base import MergePolicy


class SizeTieredPolicy(MergePolicy):
    """HBase-style size-tiered compaction over one age-ordered sequence.

    Parameters
    ----------
    size_ratio:
        ``T``; a window's oldest component qualifies when its size is at
        most ``T`` times the total size of the younger components in the
        window (HBase's ratio rule; the paper's default is 1.2).
    min_merge, max_merge:
        Bounds on the number of components merged at once (paper: 2, 10).
    expected_component_cap:
        Steady-state component estimate used for constraint sizing; the
        paper sets the maximum tolerated components at 50 for this policy.
    always_min:
        When True, merge exactly ``min_merge`` components (the paper's
        sustainable-throughput testing fix).
    max_concurrent:
        Merge operations allowed in flight at once. HBase executes
        compactions from a small fixed thread pool (one "small" and one
        "large" pool thread by default), and this bound is load-bearing
        for the paper's Section 5.3 finding: when merges are busy,
        flushed components pile up un-merged, so the next policy
        execution finds a *wide* window — under a closed write loop the
        policy therefore merges many components at once and measures an
        inflated maximum write throughput, while under steady arrivals it
        settles into narrow merges. Unbounded concurrency would let
        eager pair-merges pre-empt every wide window and mute the
        non-determinism entirely.
    """

    name = "size-tiered"

    def __init__(
        self,
        size_ratio: float = 1.2,
        min_merge: int = 2,
        max_merge: int = 10,
        expected_component_cap: int = 25,
        always_min: bool = False,
        max_concurrent: int = 2,
    ) -> None:
        if size_ratio <= 1.0:
            raise ConfigurationError("size-tiered ratio must exceed 1")
        if min_merge < 2:
            raise ConfigurationError("min_merge must be at least 2")
        if max_merge < min_merge:
            raise ConfigurationError("max_merge must be >= min_merge")
        if expected_component_cap < 1:
            raise ConfigurationError("expected_component_cap must be >= 1")
        if max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        self._size_ratio = size_ratio
        self._min_merge = min_merge
        self._max_merge = max_merge
        self._expected = expected_component_cap
        self._always_min = always_min
        self._max_concurrent = max_concurrent

    @property
    def always_min(self) -> bool:
        """True when the testing-phase fix (merge exactly min) is active."""
        return self._always_min

    @property
    def min_merge(self) -> int:
        """Minimum components per merge."""
        return self._min_merge

    @property
    def max_merge(self) -> int:
        """Maximum components per merge."""
        return self._max_merge

    def with_always_min(self, enabled: bool) -> "SizeTieredPolicy":
        """A copy of this policy with the testing fix toggled."""
        return SizeTieredPolicy(
            size_ratio=self._size_ratio,
            min_merge=self._min_merge,
            max_merge=self._max_merge,
            expected_component_cap=self._expected,
            always_min=enabled,
            max_concurrent=self._max_concurrent,
        )

    def expected_components(self) -> int:
        return self._expected

    def _window_from(self, ordered: list[Component], start: int) -> list[Component]:
        """The components a merge starting at ``start`` would process.

        Implements the ratio rule: the window's oldest component must be
        no larger than ``T`` times the total of its younger companions.
        Extends the window as far as allowed (elastic mode) or exactly to
        ``min_merge`` (testing-fix mode).
        """
        limit = self._min_merge if self._always_min else self._max_merge
        window = ordered[start : start + limit]
        if len(window) < self._min_merge:
            return []
        younger_total = sum(c.size_bytes for c in window[1:])
        if window[0].size_bytes > self._size_ratio * younger_total:
            # Try shrinking from the young end only in elastic mode: a
            # smaller window has a smaller younger_total, so shrinking
            # never helps the ratio rule — the window is simply not ready.
            return []
        return window

    def select_merges(
        self,
        tree: TreeSnapshot,
        uids: UidAllocator,
        active: Sequence[MergeDescriptor] = (),
    ) -> list[MergeDescriptor]:
        # One age-ordered sequence: all components live at level 0 and are
        # ordered oldest-first by the executor. HBase examines maximal
        # contiguous runs of components that are not currently merging.
        ordered = tree.level(0)
        budget = self._max_concurrent - len(active)
        if budget <= 0:
            return []
        merges: list[MergeDescriptor] = []
        run: list[Component] = []
        runs: list[list[Component]] = []
        for component in ordered:
            if component.merging:
                if run:
                    runs.append(run)
                    run = []
            else:
                run.append(component)
        if run:
            runs.append(run)
        for candidates in runs:
            start = 0
            while start + self._min_merge <= len(candidates):
                if len(merges) >= budget:
                    return merges
                window = self._window_from(candidates, start)
                if window:
                    merges.append(
                        MergeDescriptor(
                            uid=uids.next(),
                            inputs=window,
                            target_level=0,
                            reason="size-tiered",
                        )
                    )
                    start += len(window)
                else:
                    start += 1
        return merges

    def __repr__(self) -> str:
        return (
            f"SizeTieredPolicy(T={self._size_ratio}, min={self._min_merge}, "
            f"max={self._max_merge}, always_min={self._always_min})"
        )
