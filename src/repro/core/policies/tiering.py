"""The tiering merge policy (Figure 2b).

Each level holds up to ``T`` components; when ``T`` mergeable components
have accumulated at a level, the ``T`` oldest are merged into a single
component at the next level. At the configured last level, components are
merged *in place* (the output stays on the last level): the dataset's
unique-entry footprint bounds its size, so the last level oscillates
between one and ``T`` components — the standard behaviour of tiering
implementations at the bottom of the tree.

Per the policies' definition there is at most one active merge per level
(Section 5.1.3), which caps concurrency at ``L`` merges.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigurationError
from ..components import MergeDescriptor, TreeSnapshot, UidAllocator
from .base import MergePolicy


class TieringPolicy(MergePolicy):
    """Classic tiering: merge ``T`` equal-ish components a level at a time.

    Parameters
    ----------
    size_ratio:
        ``T``: components per level, and the growth factor between levels.
    levels:
        Number of on-disk levels. Merges from the last level stay on the
        last level.
    """

    name = "tiering"

    def __init__(self, size_ratio: int, levels: int) -> None:
        if size_ratio < 2:
            raise ConfigurationError("tiering size ratio must be at least 2")
        if levels < 1:
            raise ConfigurationError("tiering needs at least one disk level")
        self._size_ratio = int(size_ratio)
        self._levels = levels

    @property
    def size_ratio(self) -> int:
        """The size ratio ``T`` (components merged at once)."""
        return self._size_ratio

    @property
    def levels(self) -> int:
        """The number of on-disk levels ``L``."""
        return self._levels

    def expected_components(self) -> int:
        return self._size_ratio * self._levels

    def select_merges(
        self,
        tree: TreeSnapshot,
        uids: UidAllocator,
        active: Sequence[MergeDescriptor] = (),
    ) -> list[MergeDescriptor]:
        busy_sources = {
            component.level for merge in active for component in merge.inputs
        }
        merges: list[MergeDescriptor] = []
        # Disk levels are numbered 0..L-1; flushes land at level 0 with
        # size ~M, so level i holds components of ~M * T**i. A level with
        # T mergeable components sends its T oldest to the next level;
        # outputs may coexist with an ongoing merge *into* the same level
        # since tiering levels hold multiple components by design.
        for level in range(0, self._levels):
            if level in busy_sources:
                continue  # at most one active merge per level
            candidates = tree.mergeable(level)
            if len(candidates) < self._size_ratio:
                continue
            target = min(level + 1, self._levels - 1)
            inputs = candidates[: self._size_ratio]
            merges.append(
                MergeDescriptor(
                    uid=uids.next(),
                    inputs=inputs,
                    target_level=target,
                    reason=f"tier-L{level}",
                )
            )
            busy_sources.add(level)
        return merges

    def __repr__(self) -> str:
        return f"TieringPolicy(T={self._size_ratio}, L={self._levels})"
