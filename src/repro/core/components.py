"""Core LSM abstractions shared by the simulator and the storage engine.

A *component* is an immutable sorted run on disk, described here purely by
metadata: which level it lives on, how many bytes/entries it holds, and
(for partitioned trees) which slice of the normalized key space it covers.
Merge *policies* (``repro.core.policies``) look at a tree snapshot and
decide which components to merge; merge *schedulers*
(``repro.core.schedulers``) decide how the I/O bandwidth budget is divided
among the merges the policy created. Both operate only on the types in
this module, which is what lets the same policy/scheduler code drive both
the discrete-event simulator and the real storage engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import PolicyError

#: Level number used for components flushed straight from memory before
#: any merge policy has assigned them a home (partitioned trees keep them
#: at level 0; full-merge trees treat flushed components as level 0 too).
FLUSH_LEVEL = 0


@dataclass
class Component:
    """Metadata for one immutable disk component (sorted run).

    ``key_lo``/``key_hi`` describe the half-open normalized key range
    ``[key_lo, key_hi)`` the component covers; unpartitioned components
    cover ``[0, 1)``. ``profile`` is an opaque per-workload summary used by
    the simulator's keyspace model to estimate merge reclamation;
    ``handle`` is an opaque reference used by the storage engine to find
    the backing sorted-run file. Neither is interpreted by policies.
    """

    uid: int
    level: int
    size_bytes: float
    entry_count: float
    key_lo: float = 0.0
    key_hi: float = 1.0
    merging: bool = False
    profile: Any = None
    handle: Any = None

    @property
    def key_width(self) -> float:
        """Fraction of the key space this component covers."""
        return self.key_hi - self.key_lo

    def overlaps(self, other: "Component") -> bool:
        """True when the two components' key ranges intersect."""
        return self.key_lo < other.key_hi and other.key_lo < self.key_hi

    def __repr__(self) -> str:  # concise: these appear in debug dumps a lot
        flag = "*" if self.merging else ""
        return (
            f"C{self.uid}{flag}(L{self.level}, {self.size_bytes / 2**20:.1f}MB, "
            f"[{self.key_lo:.3f},{self.key_hi:.3f}))"
        )


@dataclass
class MergeDescriptor:
    """A merge operation requested by a policy, to be run by a scheduler.

    ``inputs`` are ordered oldest-first. ``target_level`` is where the
    output lands. ``reason`` is a free-form tag used by metrics ("L0",
    "level-3", "size-tiered" ...). The runtime progress fields are owned by
    the executor: ``remaining_input_bytes`` counts down from
    ``input_bytes`` as the merge reads, which is also the quantity the
    greedy scheduler ranks by (the paper's "remaining input pages"
    approximation, Fig. 7 line 12).
    """

    uid: int
    inputs: list[Component]
    target_level: int
    reason: str = ""
    remaining_input_bytes: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.inputs:
            raise PolicyError("a merge needs at least one input component")
        seen = set()
        for component in self.inputs:
            if component.uid in seen:
                raise PolicyError(f"component {component.uid} listed twice")
            seen.add(component.uid)
            if component.merging:
                raise PolicyError(
                    f"component {component.uid} is already part of another merge"
                )
        for component in self.inputs:
            component.merging = True
        if self.remaining_input_bytes == 0.0:
            self.remaining_input_bytes = self.input_bytes

    @property
    def input_bytes(self) -> float:
        """Total bytes across all input components."""
        return sum(component.size_bytes for component in self.inputs)

    @property
    def input_entries(self) -> float:
        """Total entries across all input components."""
        return sum(component.entry_count for component in self.inputs)

    @property
    def progress(self) -> float:
        """Fraction of the merge's input already consumed, in [0, 1]."""
        total = self.input_bytes
        if total <= 0:
            return 1.0
        return 1.0 - self.remaining_input_bytes / total

    def release_inputs(self) -> None:
        """Clear the ``merging`` mark (merge completed or abandoned)."""
        for component in self.inputs:
            component.merging = False

    def __repr__(self) -> str:
        ids = ",".join(str(c.uid) for c in self.inputs)
        return (
            f"Merge{self.uid}([{ids}] -> L{self.target_level}, "
            f"{self.remaining_input_bytes / 2**20:.1f}MB left)"
        )


class TreeSnapshot:
    """A read-only view of the tree's disk components, grouped by level.

    Policies receive this on every decision point. Components within a
    level are ordered oldest-first, which is the order merges must respect
    for correctness (newer entries shadow older ones).
    """

    def __init__(self, components: Iterable[Component]) -> None:
        self._components = list(components)
        self._by_level: dict[int, list[Component]] = {}
        for component in self._components:
            self._by_level.setdefault(component.level, []).append(component)

    @property
    def components(self) -> list[Component]:
        """All disk components, oldest-first within each level."""
        return list(self._components)

    def level(self, index: int) -> list[Component]:
        """Components at a level, oldest first (empty list if none)."""
        return list(self._by_level.get(index, []))

    def levels(self) -> list[int]:
        """Sorted list of level numbers that currently hold components."""
        return sorted(self._by_level)

    def max_level(self) -> int:
        """Highest occupied level (0 when the tree is empty)."""
        return max(self._by_level, default=0)

    def count(self) -> int:
        """Total number of disk components."""
        return len(self._components)

    def count_at(self, index: int) -> int:
        """Number of components at one level."""
        return len(self._by_level.get(index, []))

    def bytes_at(self, index: int) -> float:
        """Total bytes at one level."""
        return sum(c.size_bytes for c in self._by_level.get(index, []))

    def mergeable(self, index: int) -> list[Component]:
        """Components at a level that are not already being merged."""
        return [c for c in self._by_level.get(index, []) if not c.merging]

    def overlapping(self, level: int, lo: float, hi: float) -> list[Component]:
        """Components at ``level`` intersecting the key range ``[lo, hi)``,
        ordered by key range."""
        hits = [
            c
            for c in self._by_level.get(level, [])
            if c.key_lo < hi and lo < c.key_hi
        ]
        return sorted(hits, key=lambda c: c.key_lo)


class UidAllocator:
    """Monotonic id source for components and merges within one tree."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next(self) -> int:
        """Return the next unused id."""
        return next(self._counter)
