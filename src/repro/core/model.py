"""Closed-form LSM cost model (Table 1 and Section 5.1's analysis).

These formulas are the paper's analytic backbone: the expected maximum
write throughput of leveling and tiering under an I/O bandwidth budget,
the expected number of levels and components, and the component-constraint
sizing rule ("twice the expected number of disk components"). The
simulator is validated against them in ``benchmarks/test_table1_model.py``
and ``tests/sim`` — measured closed-system throughput must land near the
closed-form prediction.

Notation (Table 1): ``T`` size ratio, ``L`` number of levels, ``M`` memory
component size (entries), ``B`` I/O bandwidth (entries/s), ``mu`` arrival
rate, ``W`` write throughput.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def levels_for_leveling(total_entries: float, memory_entries: float, size_ratio: float) -> int:
    """Number of on-disk levels a leveling tree needs for a dataset.

    Level ``i`` (1-based) holds up to ``M * T**i`` entries; the smallest
    ``L`` with ``M * T**L >= N`` suffices.
    """
    _validate(total_entries, memory_entries, size_ratio)
    levels = 1
    capacity = memory_entries * size_ratio
    while capacity < total_entries:
        capacity *= size_ratio
        levels += 1
    return levels


def levels_for_tiering(total_entries: float, memory_entries: float, size_ratio: float) -> int:
    """Number of on-disk levels a tiering tree needs for a dataset.

    Level ``i`` holds up to ``T`` components of ``M * T**(i-1)`` entries
    each, i.e. up to ``M * T**i`` entries — the same geometric capacity as
    leveling, so the level count formula coincides.
    """
    return levels_for_leveling(total_entries, memory_entries, size_ratio)


def max_write_throughput_leveling(bandwidth: float, size_ratio: float, levels: int) -> float:
    """``W_level ~= 2 * B / (T * L)``: each entry is merged ``T/2`` times
    per level on average, across ``L`` levels (Section 5.1.3)."""
    if bandwidth <= 0 or size_ratio <= 1 or levels < 1:
        raise ConfigurationError("need B > 0, T > 1, L >= 1")
    return 2.0 * bandwidth / (size_ratio * levels)


def max_write_throughput_tiering(bandwidth: float, levels: int) -> float:
    """``W_tier ~= B / L``: each entry is merged once per level."""
    if bandwidth <= 0 or levels < 1:
        raise ConfigurationError("need B > 0, L >= 1")
    return bandwidth / levels


def expected_components_leveling(levels: int) -> int:
    """A leveling tree holds one component per level."""
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    return levels


def expected_components_tiering(levels: int, size_ratio: float) -> int:
    """A tiering tree holds up to ``T`` components per level."""
    if levels < 1 or size_ratio <= 1:
        raise ConfigurationError("need L >= 1, T > 1")
    return int(math.ceil(levels * size_ratio))


def default_component_limit(expected_components: int, factor: float = 2.0) -> int:
    """The paper's conservative global constraint: tolerate ``factor``
    times the expected number of disk components (Section 5.1.1).

    Factors below 1 are permitted — the constraint-factor ablation sweeps
    them deliberately — but they budget fewer components than the policy
    maintains in steady state, so stalls (or outright deadlock) are
    guaranteed.
    """
    if expected_components < 1:
        raise ConfigurationError("expected component count must be >= 1")
    if factor <= 0.0:
        raise ConfigurationError("constraint factor must be positive")
    return max(1, int(math.ceil(expected_components * factor)))


def flushed_components_tolerated(
    policy: str, size_ratio: float, level: int, levels: int
) -> float:
    """Flushed components that pile up during one level-``i`` merge under a
    single-threaded scheduler (Section 5.1.3's motivating computation).

    Returns ``2 * T**(i-1) / L`` for leveling and ``T**i / L`` for tiering
    — the exponential growth that rules out single-threaded scheduling for
    full merges.
    """
    if policy == "leveling":
        return 2.0 * size_ratio ** (level - 1) / levels
    if policy == "tiering":
        return size_ratio**level / levels
    raise ConfigurationError(f"unknown policy {policy!r}")


def _validate(total_entries: float, memory_entries: float, size_ratio: float) -> None:
    if total_entries <= 0 or memory_entries <= 0:
        raise ConfigurationError("entry counts must be positive")
    if size_ratio <= 1:
        raise ConfigurationError("size ratio must exceed 1")
