"""repro: a reproduction of "On Performance Stability in LSM-based
Storage Systems" (Luo & Carey, VLDB 2019).

The package has three layers:

* :mod:`repro.core` — the paper's contribution: merge policies, merge
  schedulers (single-threaded / fair / greedy / bLSM spring-and-gear),
  component constraints, and write controls, all over abstract component
  metadata.
* :mod:`repro.sim` — a fluid discrete-event simulator that reproduces the
  paper's testbed (bandwidth budgets, flush priority, write stalls) with
  a virtual clock, plus :mod:`repro.harness` implementing the two-phase
  evaluation methodology.
* :mod:`repro.engine` — a real, embeddable LSM key-value storage engine
  (memtable, sorted runs with Bloom filters, WAL, manifest, compaction)
  driven by the same policies and schedulers.

Quickstart::

    from repro.harness import ExperimentSpec, two_phase
    outcome = two_phase(ExperimentSpec.tiering(scheduler="greedy"))
    print(outcome.max_write_throughput, outcome.p99_write_latency)
"""

from . import core, errors, metrics, sim, workloads

__version__ = "1.0.0"

__all__ = ["core", "errors", "metrics", "sim", "workloads", "__version__"]
