"""Consistent-hash ring: mapping keys onto shards.

The cluster partitions the keyspace by *hash*, not by range: each shard
owns the arcs of a 64-bit hash circle claimed by its virtual nodes, so
keys spread evenly regardless of key shape, and a skewed workload makes
a shard hot only through genuinely popular keys (the hot-shard regime
the cluster admission experiments study). Hash partitioning means range
scans cannot be routed — the router scatter-gathers them across every
shard and merges the ordered streams (:mod:`repro.cluster.router`).

The ring is deterministic: the same ``(num_shards, vnodes)`` always
produces the same placement, so routers, embeddable stores, and tests
agree on key ownership without coordination.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

from ..errors import ConfigurationError

#: Virtual nodes per shard; enough that shard arcs even out on the circle.
DEFAULT_VNODES = 64


def _hash64(data: bytes) -> int:
    """Stable 64-bit position on the circle (blake2b, not Python hash)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over ``num_shards`` shards.

    Each shard plants ``vnodes`` markers on the circle; a key belongs to
    the shard owning the first marker at or after the key's hash
    (wrapping at the top). With dozens of virtual nodes per shard the
    expected load imbalance from placement alone is a few percent.
    """

    def __init__(self, num_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if num_shards < 1:
            raise ConfigurationError("a ring needs at least one shard")
        if vnodes < 1:
            raise ConfigurationError("each shard needs at least one vnode")
        self._num_shards = num_shards
        self._vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                marker = _hash64(f"shard-{shard:04d}/vnode-{vnode:04d}".encode())
                points.append((marker, shard))
        points.sort()
        self._points = points
        self._markers = [marker for marker, _ in points]

    @property
    def num_shards(self) -> int:
        """How many shards the ring routes to."""
        return self._num_shards

    @property
    def vnodes(self) -> int:
        """Virtual nodes per shard."""
        return self._vnodes

    def __len__(self) -> int:
        return self._num_shards

    def shard_for(self, key: bytes) -> int:
        """The shard owning ``key``."""
        position = bisect_right(self._markers, _hash64(key))
        if position == len(self._markers):
            position = 0  # wrap past the top of the circle
        return self._points[position][1]

    def partition(
        self, keys: Iterable[bytes]
    ) -> dict[int, list[bytes]]:
        """Group ``keys`` by owning shard, preserving per-shard order."""
        groups: dict[int, list[bytes]] = {}
        for key in keys:
            groups.setdefault(self.shard_for(key), []).append(key)
        return groups

    def traffic_shares(self, keys: Iterable[bytes]) -> dict[int, float]:
        """Fraction of ``keys`` routed to each shard (hot-shard probes)."""
        counts = dict.fromkeys(range(self._num_shards), 0)
        total = 0
        for key in keys:
            counts[self.shard_for(key)] += 1
            total += 1
        if total == 0:
            return {shard: 0.0 for shard in counts}
        return {shard: count / total for shard, count in counts.items()}

    def __repr__(self) -> str:
        return (
            f"HashRing(num_shards={self._num_shards}, "
            f"vnodes={self._vnodes})"
        )
