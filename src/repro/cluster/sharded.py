"""A multi-engine sharded store with a shared maintenance budget.

:class:`ShardedStore` owns one :class:`~repro.engine.LSMStore` per
shard (each in its own subdirectory) and routes keys through a
:class:`~repro.cluster.ring.HashRing`. The cluster-level twist is the
*shared I/O budget*: maintenance (flushes + merge chunks) across all
shards is paid from one pot, arbitrated by the same scheduler taxonomy
the paper applies to merges inside a single tree
(:mod:`repro.core.schedulers`):

* ``fair``  — every needy shard gets an equal slice of the pump budget
  (Cassandra/HBase-style even split, Section 5.1.4 one level up). A
  hot shard whose ingest outruns its fair slice falls behind and
  stalls; cold shards stay comfortably ahead — the regime where the
  global-vs-local admission scopes separate.
* ``greedy`` — the whole budget goes to the shard with the *smallest*
  maintenance backlog (the paper's greedy scheduler, Section 5.1.5:
  finishing the smallest remaining work first minimizes how many
  shards are backlogged at once).

Shard backlogs are translated into synthetic
:class:`~repro.core.components.MergeDescriptor` objects so the real
:class:`~repro.core.schedulers.FairScheduler` /
:class:`~repro.core.schedulers.GreedyScheduler` implementations do the
arbitration — the cluster reuses the paper's machinery rather than
reimplementing it.

Online migration support (dual-write mirrors) lives here; the paged
copy loop that uses it is :mod:`repro.cluster.rebalance`.
"""

from __future__ import annotations

import heapq
import os
import threading
from operator import itemgetter
from typing import Iterator, Sequence

from ..core.components import Component, MergeDescriptor
from ..core.schedulers import FairScheduler, GreedyScheduler, MergeScheduler
from ..engine.datastore import LSMStore, StoreStats
from ..engine.options import StoreOptions, TOMBSTONE
from ..errors import ConfigurationError
from ..memory import MemoryArbiter, MemoryBudget
from ..obs import Observability
from .ring import HashRing
from .stats import ClusterStats, aggregate_stats

#: Arbiter names accepted by :class:`ShardedStore`.
ARBITERS = ("fair", "greedy")


def _build_arbiter(name: str) -> MergeScheduler:
    if name == "fair":
        return FairScheduler()
    if name == "greedy":
        return GreedyScheduler()
    raise ConfigurationError(
        f"unknown arbiter {name!r}; expected one of {ARBITERS}"
    )


def _apportion(allocation: dict[int, float], budget: int) -> dict[int, int]:
    """Largest-remainder rounding of a bandwidth split into pump calls."""
    total = sum(allocation.values())
    if total <= 0.0:
        return {}
    quotas = {
        shard: budget * share / total
        for shard, share in allocation.items()
        if share > 0.0
    }
    pumps = {shard: int(quota) for shard, quota in quotas.items()}
    leftover = budget - sum(pumps.values())
    by_remainder = sorted(
        quotas,
        key=lambda shard: (quotas[shard] - pumps[shard], -shard),
        reverse=True,
    )
    for shard in by_remainder[:leftover]:
        pumps[shard] += 1
    return {shard: count for shard, count in pumps.items() if count > 0}


class ShardedStore:
    """N hash-partitioned LSM engines behind one KV interface.

    Writes route by key; scans scatter across every shard and merge the
    ordered streams. ``write_batch`` splits into per-shard sub-batches —
    atomic within a shard, not across shards.
    """

    def __init__(
        self,
        directory: str,
        num_shards: int = 4,
        options: StoreOptions | None = None,
        ring: HashRing | None = None,
        arbiter: str = "fair",
        pump_budget: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("need at least one shard")
        self._options = options or StoreOptions()
        self._ring = ring or HashRing(num_shards)
        if self._ring.num_shards != num_shards:
            raise ConfigurationError(
                f"ring routes to {self._ring.num_shards} shards but the "
                f"store has {num_shards}"
            )
        if pump_budget is not None and pump_budget < 1:
            raise ConfigurationError("pump budget must be positive")
        self._arbiter = _build_arbiter(arbiter)
        self._arbiter_name = arbiter
        self._pump_budget = pump_budget or num_shards
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self._stores: list[LSMStore] = []
        try:
            for shard in range(num_shards):
                self._stores.append(
                    LSMStore.open(self.shard_directory(shard), self._options)
                )
        except BaseException:
            for store in self._stores:
                store.close()
            raise
        self._shard_locks = [threading.RLock() for _ in range(num_shards)]
        self._mirrors: dict[int, LSMStore] = {}
        self._memory_arbiter: MemoryArbiter | None = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        num_shards: int = 4,
        options: StoreOptions | None = None,
        **kwargs,
    ) -> "ShardedStore":
        """Open (or create) a sharded store rooted at ``directory``."""
        return cls(directory, num_shards, options, **kwargs)

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close every shard engine (and any in-flight migration mirror)."""
        if self._closed:
            return
        self._closed = True
        for mirror in self._mirrors.values():
            mirror.close()
        self._mirrors.clear()
        for store in self._stores:
            store.close()

    def shard_directory(self, shard: int) -> str:
        """The data directory of one shard's engine."""
        return os.path.join(self._directory, f"shard-{shard:02d}")

    # -- routing ---------------------------------------------------------

    @property
    def ring(self) -> HashRing:
        """The consistent-hash ring shared with any serving tier."""
        return self._ring

    @property
    def num_shards(self) -> int:
        """How many shard engines the store owns."""
        return len(self._stores)

    @property
    def options(self) -> StoreOptions:
        """The per-shard engine options."""
        return self._options

    @property
    def arbiter(self) -> str:
        """The shared-budget arbitration policy name."""
        return self._arbiter_name

    def shard_for(self, key: bytes) -> int:
        """Which shard owns ``key``."""
        return self._ring.shard_for(key)

    def engine(self, shard: int) -> LSMStore:
        """Direct access to one shard's engine (serving tier, tests)."""
        return self._stores[shard]

    def engines(self) -> Sequence[LSMStore]:
        """All shard engines, index-aligned with shard ids."""
        return tuple(self._stores)

    # -- writes ----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update one key on its owning shard."""
        self._apply(self.shard_for(key), [(key, value)])

    def delete(self, key: bytes) -> None:
        """Delete one key on its owning shard."""
        self._apply(self.shard_for(key), [(key, TOMBSTONE)])

    def write_batch(self, batch: list[tuple[bytes, bytes | None]]) -> None:
        """Apply a batch, split per shard (atomic within each shard)."""
        if not batch:
            raise ConfigurationError("empty batch")
        groups: dict[int, list[tuple[bytes, bytes | None]]] = {}
        for key, value in batch:
            groups.setdefault(self.shard_for(key), []).append((key, value))
        for shard in sorted(groups):
            self._apply(shard, groups[shard])

    def _apply(
        self, shard: int, ops: list[tuple[bytes, bytes | None]]
    ) -> None:
        with self._shard_locks[shard]:
            store = self._stores[shard]
            if len(ops) == 1:
                key, value = ops[0]
                if value is TOMBSTONE:
                    store.delete(key)
                else:
                    store.put(key, value)
            else:
                store.write_batch(ops)
            mirror = self._mirrors.get(shard)
            if mirror is not None:
                # Dual-write: the migration target sees every mutation
                # that lands after it attached (rebalance.py relies on
                # newest-wins to make its paged copy safe).
                for key, value in ops:
                    if value is TOMBSTONE:
                        mirror.delete(key)
                    else:
                        mirror.put(key, value)

    # -- reads -----------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Point lookup on the owning shard."""
        return self._stores[self.shard_for(key)].get(key)

    def multi_get(self, keys: list[bytes]) -> dict[bytes, bytes | None]:
        """Batched point lookups, grouped per shard."""
        return {key: self.get(key) for key in keys}

    def scan(
        self,
        lo: bytes | None = None,
        hi: bytes | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered scan over ``[lo, hi)``: scatter + merge every shard.

        Hash partitioning gives every shard a slice of any key range, so
        the scan must visit all of them; per-shard results are already
        ordered and keys are disjoint across shards, so a heap merge
        restores the global order.
        """
        sources = [store.scan(lo, hi, limit) for store in self._stores]
        results: list[tuple[bytes, bytes]] = []
        for item in heapq.merge(*sources, key=itemgetter(0)):
            results.append(item)
            if limit is not None and len(results) >= limit:
                break
        return iter(results)

    # -- shared-budget maintenance ---------------------------------------

    def _backlog(self, stats: StoreStats, memtable_target: int) -> float:
        """Bytes-scale proxy for one shard's outstanding maintenance.

        Sealed memtables await flushes; consumed component budget
        (``1 - write_headroom``) stands in for remaining merge input,
        scaled to the same order of magnitude. Uses the shard's *live*
        memtable target — the memory arbiter moves it — so a shard with
        a big write budget is credited with proportionally more debt
        per sealed memtable.
        """
        flush_debt = stats.sealed_memtables * memtable_target
        merge_debt = (
            (1.0 - max(0.0, min(stats.write_headroom, 1.0)))
            * 8.0
            * memtable_target
        )
        return flush_debt + merge_debt

    def pump(self, rounds: int = 1) -> dict[int, int]:
        """Spend the shared maintenance budget across needy shards.

        Each round gathers per-shard backlogs, lets the arbiter
        (:class:`FairScheduler` or :class:`GreedyScheduler`) split the
        pump budget, and spends each shard's slice as
        ``advance_maintenance()`` calls on that shard's engine. Returns
        the total pumps applied per shard (for tests and reporting).

        Shards running background maintenance workers make their own
        progress, so the pump is a no-op for them — arbitrating a shared
        budget the workers ignore would just misreport who did the work.
        """
        if rounds < 1:
            raise ConfigurationError("pump rounds must be positive")
        if self._options.background_maintenance:
            return {}
        applied: dict[int, int] = {}
        for _ in range(rounds):
            backlogs = {
                shard: self._backlog(
                    store.stats(), store.memtable_target_bytes
                )
                for shard, store in enumerate(self._stores)
            }
            needy = {
                shard: backlog
                for shard, backlog in backlogs.items()
                if backlog > 0.0
            }
            if not needy:
                break
            descriptors = [
                MergeDescriptor(
                    uid=shard,
                    inputs=[
                        Component(
                            uid=shard,
                            level=0,
                            size_bytes=backlog,
                            entry_count=1.0,
                        )
                    ],
                    target_level=1,
                    reason="cluster-maintenance",
                )
                for shard, backlog in sorted(needy.items())
            ]
            allocation = self._arbiter.allocate(
                descriptors, float(self._pump_budget)
            )
            for shard, pumps in sorted(
                _apportion(allocation, self._pump_budget).items()
            ):
                with self._shard_locks[shard]:
                    for _ in range(pumps):
                        self._stores[shard].advance_maintenance()
                applied[shard] = applied.get(shard, 0) + pumps
        return applied

    def maintenance(self) -> None:
        """Run every shard's maintenance to quiescence."""
        for shard, store in enumerate(self._stores):
            with self._shard_locks[shard]:
                store.maintenance()

    # -- adaptive memory arbitration -------------------------------------

    def enable_memory_arbiter(
        self,
        total_bytes: int,
        *,
        obs: Observability | None = None,
        **arbiter_kwargs,
    ) -> MemoryArbiter:
        """Put every shard's memory under one adaptive budget.

        Builds a :class:`~repro.memory.MemoryBudget` of ``total_bytes``
        over the shard engines and a :class:`~repro.memory.MemoryArbiter`
        that re-splits it from observed signals. The initial equal-share
        split is applied immediately; afterwards the owner drives the
        control loop — a serving tier ticks ``arbiter.maybe_tick`` on a
        timer, a bench calls :meth:`rebalance_memory` inline. Extra
        keyword arguments pass through to the arbiter (clock, interval,
        step sizes) so tests stay deterministic.
        """
        if self._memory_arbiter is not None:
            raise ConfigurationError(
                "memory arbiter already enabled for this store"
            )
        budget = MemoryBudget(total_bytes, self.num_shards)
        self._memory_arbiter = MemoryArbiter(
            budget, self._stores, obs=obs, **arbiter_kwargs
        )
        return self._memory_arbiter

    @property
    def memory_arbiter(self) -> MemoryArbiter | None:
        """The adaptive memory arbiter, if one was enabled."""
        return self._memory_arbiter

    def rebalance_memory(self):
        """Force one arbiter tick (benches, tests, admin endpoints)."""
        if self._memory_arbiter is None:
            raise ConfigurationError(
                "no memory arbiter enabled for this store"
            )
        return self._memory_arbiter.tick()

    # -- migration hooks (driven by repro.cluster.rebalance) -------------

    def attach_mirror(self, shard: int, mirror: LSMStore) -> None:
        """Start dual-writing ``shard``'s mutations into ``mirror``."""
        with self._shard_locks[shard]:
            if shard in self._mirrors:
                raise ConfigurationError(
                    f"shard {shard} already has a migration in flight"
                )
            self._mirrors[shard] = mirror

    def mirror_of(self, shard: int) -> LSMStore | None:
        """The in-flight migration target for ``shard``, if any."""
        return self._mirrors.get(shard)

    def shard_lock(self, shard: int) -> threading.RLock:
        """The lock serializing writes (and cutover) on one shard."""
        return self._shard_locks[shard]

    def promote_mirror(self, shard: int) -> LSMStore:
        """Cut over: the mirror becomes the shard's primary engine.

        Returns the *old* engine; the caller (rebalance) closes it once
        it has finished verifying.
        """
        with self._shard_locks[shard]:
            mirror = self._mirrors.pop(shard, None)
            if mirror is None:
                raise ConfigurationError(
                    f"shard {shard} has no migration in flight"
                )
            old = self._stores[shard]
            self._stores[shard] = mirror
            return old

    def abandon_mirror(self, shard: int) -> LSMStore | None:
        """Drop an in-flight migration target without cutting over."""
        with self._shard_locks[shard]:
            return self._mirrors.pop(shard, None)

    # -- introspection ---------------------------------------------------

    def stats_list(self) -> list[StoreStats]:
        """Per-shard engine snapshots, index-aligned with shard ids."""
        return [store.stats() for store in self._stores]

    def stats(self) -> ClusterStats:
        """Aggregated cluster snapshot (per-shard + rollups)."""
        return aggregate_stats(self.stats_list())

    @property
    def directory(self) -> str:
        """The cluster's root data directory."""
        return self._directory

    def __repr__(self) -> str:
        return (
            f"ShardedStore(shards={self.num_shards}, "
            f"arbiter={self._arbiter_name!r}, dir={self._directory!r})"
        )
