"""Aggregated cluster statistics and the global-constraint stats view.

Two views of the same per-shard :class:`~repro.engine.StoreStats`
snapshots:

* :class:`ClusterStats` — monitoring: every shard's snapshot plus the
  cluster-wide rollups (``write_stalled`` anywhere, worst
  ``memory_fill``, summed ``stall_seconds_total``, …).
* :func:`worst_case_stats` — admission: one synthetic ``StoreStats``
  carrying the *worst* backpressure signal observed on any shard. A
  per-engine controller fed this view behaves like the paper's global
  component constraint lifted to the cluster: one saturated shard makes
  the whole cluster look saturated. Feeding the controller a single
  shard's own snapshot instead yields the local constraint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from ..engine.datastore import StoreStats
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ClusterStats:
    """Point-in-time cluster summary: per-shard snapshots + rollups."""

    per_shard: tuple[StoreStats, ...]
    write_stalled: bool
    stalled_shards: tuple[int, ...]
    memory_fill: float
    write_headroom: float
    stall_seconds_total: float
    write_stalls: int
    disk_components: int
    memtable_entries: int
    wal_bytes: int

    @property
    def num_shards(self) -> int:
        """How many shards contributed."""
        return len(self.per_shard)

    def snapshot(self) -> dict:
        """Plain-dict view (per-shard + rollups) for STATS responses."""
        return {
            "shards": [
                dict(
                    asdict(stats),
                    components_per_level={
                        str(level): count
                        for level, count in stats.components_per_level.items()
                    },
                    memory_fill=stats.memory_fill,
                )
                for stats in self.per_shard
            ],
            "cluster": {
                "num_shards": self.num_shards,
                "write_stalled": self.write_stalled,
                "stalled_shards": list(self.stalled_shards),
                "memory_fill": self.memory_fill,
                "write_headroom": self.write_headroom,
                "stall_seconds_total": self.stall_seconds_total,
                "write_stalls": self.write_stalls,
                "disk_components": self.disk_components,
                "memtable_entries": self.memtable_entries,
                "wal_bytes": self.wal_bytes,
            },
        }


def aggregate_stats(snapshots: Sequence[StoreStats]) -> ClusterStats:
    """Roll per-shard snapshots up into one :class:`ClusterStats`."""
    if not snapshots:
        raise ConfigurationError("cannot aggregate zero shard snapshots")
    return ClusterStats(
        per_shard=tuple(snapshots),
        write_stalled=any(stats.write_stalled for stats in snapshots),
        stalled_shards=tuple(
            shard
            for shard, stats in enumerate(snapshots)
            if stats.write_stalled
        ),
        memory_fill=max(stats.memory_fill for stats in snapshots),
        write_headroom=min(stats.write_headroom for stats in snapshots),
        stall_seconds_total=sum(
            stats.stall_seconds_total for stats in snapshots
        ),
        write_stalls=sum(stats.write_stalls for stats in snapshots),
        disk_components=sum(stats.disk_components for stats in snapshots),
        memtable_entries=sum(stats.memtable_entries for stats in snapshots),
        wal_bytes=sum(stats.wal_bytes for stats in snapshots),
    )


def worst_case_stats(snapshots: Sequence[StoreStats]) -> StoreStats:
    """One synthetic snapshot carrying the worst signal per dimension.

    The flush-backlog pair (``sealed_memtables``, ``num_memtables``) is
    taken from the shard with the highest ``memory_fill`` so the derived
    property reports the worst fill; counters are summed so totals still
    mean something in reports.
    """
    if not snapshots:
        raise ConfigurationError("cannot merge zero shard snapshots")
    fullest = max(snapshots, key=lambda stats: stats.memory_fill)
    levels: dict[int, int] = {}
    for stats in snapshots:
        for level, count in stats.components_per_level.items():
            levels[level] = levels.get(level, 0) + count
    return StoreStats(
        memtable_entries=sum(s.memtable_entries for s in snapshots),
        memtable_bytes=sum(s.memtable_bytes for s in snapshots),
        sealed_memtables=fullest.sealed_memtables,
        num_memtables=fullest.num_memtables,
        disk_components=sum(s.disk_components for s in snapshots),
        components_per_level=levels,
        merges_completed=sum(s.merges_completed for s in snapshots),
        write_stalls=sum(s.write_stalls for s in snapshots),
        stall_seconds_total=sum(s.stall_seconds_total for s in snapshots),
        wal_bytes=sum(s.wal_bytes for s in snapshots),
        write_stalled=any(s.write_stalled for s in snapshots),
        write_headroom=min(s.write_headroom for s in snapshots),
        throttle_sleep_seconds=sum(
            s.throttle_sleep_seconds for s in snapshots
        ),
        block_cache_hit_rate=min(s.block_cache_hit_rate for s in snapshots),
        block_cache_used_bytes=sum(
            s.block_cache_used_bytes for s in snapshots
        ),
    )
