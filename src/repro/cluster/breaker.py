"""Per-shard circuit breakers for the cluster router.

The classic three-state machine, tuned for a shard backend:

* **closed** — traffic flows; outcomes are recorded into a sliding
  window of the last ``window`` requests. When the window holds at
  least ``min_samples`` outcomes and the failure rate reaches
  ``failure_threshold``, the breaker opens.
* **open** — every request fails fast (:meth:`allow` returns False)
  until ``cooldown`` seconds pass; :meth:`retry_after` reports the
  remaining cooldown so rejections carry an honest hint.
* **half-open** — after the cooldown, up to ``half_open_probes``
  concurrent probe requests are let through. One probe success closes
  the breaker (and clears the window); one probe failure re-opens it
  and restarts the cooldown.

Only *transport* failures (connection refused/reset, timeouts,
exhausted retries against an unreachable backend) should be recorded as
failures — a backend answering ``STALLED`` is slow, not dead, and
tripping on it would amputate a shard that merely needs backpressure.
That classification lives in the router; the breaker just counts.

The clock is injectable so state transitions are testable without
wall-clock sleeps; :attr:`transitions` logs every state change.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from ..errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: All breaker states, in degradation order.
STATES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """Failure-rate tripping breaker with cooldown and probe recovery."""

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 8,
        min_samples: int = 3,
        cooldown: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError(
                "failure_threshold must be in (0, 1]"
            )
        if window < 1 or min_samples < 1 or min_samples > window:
            raise ConfigurationError(
                "need 1 <= min_samples <= window"
            )
        if cooldown <= 0:
            raise ConfigurationError("cooldown must be positive")
        if half_open_probes < 1:
            raise ConfigurationError("need at least one half-open probe")
        self._failure_threshold = failure_threshold
        self._window: deque[bool] = deque(maxlen=window)
        self._min_samples = min_samples
        self._cooldown = cooldown
        self._half_open_probes = half_open_probes
        self._clock = clock or time.monotonic
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: Count of closed→open trips (half-open re-opens included).
        self.trips = 0
        #: Every state change as ``(old, new)``, in order.
        self.transitions: list[tuple[str, str]] = []
        self._on_transition = on_transition

    @property
    def state(self) -> str:
        """Current state, advancing open→half-open when cooldown lapsed."""
        self._maybe_half_open()
        return self._state

    def _set_state(self, new: str) -> None:
        if new != self._state:
            old = self._state
            self.transitions.append((old, new))
            self._state = new
            if self._on_transition is not None:
                self._on_transition(old, new)

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self._cooldown
        ):
            self._set_state(HALF_OPEN)
            self._probes_in_flight = 0

    def _trip(self) -> None:
        self._set_state(OPEN)
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._window.clear()
        self.trips += 1

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state a True answer consumes one probe slot, so
        callers must follow up with :meth:`record_success` or
        :meth:`record_failure` for that request.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            if self._probes_in_flight < self._half_open_probes:
                self._probes_in_flight += 1
                return True
            return False
        return False

    def record_success(self) -> None:
        """Note one successful request to the shard."""
        if self._state == HALF_OPEN:
            # The backend answered a probe: service is back.
            self._set_state(CLOSED)
            self._probes_in_flight = 0
            self._window.clear()
            return
        if self._state == CLOSED:
            self._window.append(True)

    def record_failure(self) -> None:
        """Note one transport-level failure against the shard."""
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            self._trip()  # the probe failed: back to cooling down
            return
        if self._state == OPEN:
            return
        self._window.append(False)
        if len(self._window) >= self._min_samples:
            failures = sum(1 for ok in self._window if not ok)
            if failures / len(self._window) >= self._failure_threshold:
                self._trip()

    def retry_after(self) -> float:
        """Remaining cooldown seconds (0 when traffic may flow)."""
        if self._state != OPEN:
            return 0.0
        remaining = self._cooldown - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def reset(self) -> None:
        """Force the breaker closed with a clean window.

        Used after a failover: the shard's traffic now goes to a freshly
        promoted leader, so the failure history accumulated against the
        dead one says nothing about the new backend.
        """
        self._set_state(CLOSED)
        self._probes_in_flight = 0
        self._window.clear()
