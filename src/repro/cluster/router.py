"""The cluster front-end: one framed-JSON endpoint over N shard servers.

:class:`ClusterRouter` speaks the same wire protocol as a single
:class:`~repro.server.KVServer` (clients cannot tell the difference) and
fans requests out to per-shard backends through pooled, retrying
:class:`~repro.server.KVClient` connections:

* ``PUT`` / ``DEL`` route by the consistent-hash ring; every write first
  passes the cluster admission layer
  (:class:`~repro.cluster.admission.ClusterAdmission`), which decides
  whether one stalled shard backpressures the whole cluster (``global``)
  or only its own key range (``local``).
* ``BATCH`` splits into per-shard sub-batches applied concurrently —
  atomic within a shard, not across shards.
* ``SCAN`` scatter-gathers every shard (hash partitioning gives each a
  slice of any range) and heap-merges the ordered, disjoint streams.
* ``STATS`` aggregates per-shard engine snapshots into the cluster
  rollup plus the router's own counters.

Per-shard transport failures and backend ``STALLED`` responses are
retried by the shard clients with exponential backoff, so transient
backend stalls are absorbed inside the router rather than surfaced.
Whenever admission rejects or delays a write the router pumps the
cluster maintenance hook (the sharded store's shared-budget arbiter) —
shedding load must not starve the merges that would clear the stall.

:class:`LocalCluster` is the in-process deployment used by the CLI,
tests, and examples: one :class:`~repro.cluster.sharded.ShardedStore`,
one backend :class:`KVServer` per shard engine, and a router wired with
direct (deterministic) stats and maintenance hooks.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Sequence

from ..engine.datastore import StoreStats
from ..engine.options import StoreOptions
from ..errors import (
    ConfigurationError,
    RequestFailedError,
    RetriesExhaustedError,
    ServerError,
    ShardDownError,
)
from ..obs import (
    Event,
    Observability,
    merge_events,
    merge_snapshots,
    relabel_snapshot,
)
from ..obs import events as obs_events
from ..server import protocol
from ..server.admission import REJECT
from ..server.client import KVClient
from ..server.service import FramedServer, KVServer
from .admission import ClusterAdmission, build_cluster_admission
from .breaker import OPEN, CircuitBreaker
from .ring import HashRing
from .sharded import ShardedStore
from .stats import aggregate_stats

#: How stale a polled stats snapshot may be before a fresh STATS poll.
DEFAULT_STATS_MAX_AGE = 0.05

#: Default per-shard client tuning: patient enough to absorb transient
#: backend stalls, fast enough that retries stay cheaper than the stall.
DEFAULT_SHARD_CLIENT_OPTIONS = dict(
    pool_size=2,
    timeout=5.0,
    max_retries=8,
    backoff_base=0.02,
    backoff_max=0.2,
)


@dataclass
class ClusterMetrics:
    """Cumulative router counters, exported via ``STATS``."""

    requests_total: int = 0
    reads_total: int = 0
    scans_total: int = 0
    writes_admitted: int = 0
    writes_delayed: int = 0
    writes_rejected: int = 0
    delay_seconds_total: float = 0.0
    protocol_errors: int = 0
    connections_total: int = 0
    connections_open: int = 0
    shard_down_rejections: int = 0
    degraded_scans: int = 0
    writes_admitted_per_shard: dict[int, int] = field(default_factory=dict)
    writes_rejected_per_shard: dict[int, int] = field(default_factory=dict)
    writes_delayed_per_shard: dict[int, int] = field(default_factory=dict)

    def _bump(self, counters: dict[int, int], shard: int) -> None:
        counters[shard] = counters.get(shard, 0) + 1

    def record_admitted(self, shard: int) -> None:
        """Count one write forwarded to ``shard``."""
        self.writes_admitted += 1
        self._bump(self.writes_admitted_per_shard, shard)

    def record_rejected(self, shard: int) -> None:
        """Count one write bounced for ``shard``."""
        self.writes_rejected += 1
        self._bump(self.writes_rejected_per_shard, shard)

    def record_delayed(self, shard: int, seconds: float) -> None:
        """Count one write delayed before forwarding to ``shard``."""
        self.writes_delayed += 1
        self.delay_seconds_total += seconds
        self._bump(self.writes_delayed_per_shard, shard)

    def snapshot(self) -> dict:
        """Plain-dict view for the STATS response."""
        return {
            "requests_total": self.requests_total,
            "reads_total": self.reads_total,
            "scans_total": self.scans_total,
            "writes_admitted": self.writes_admitted,
            "writes_delayed": self.writes_delayed,
            "writes_rejected": self.writes_rejected,
            "delay_seconds_total": self.delay_seconds_total,
            "protocol_errors": self.protocol_errors,
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "shard_down_rejections": self.shard_down_rejections,
            "degraded_scans": self.degraded_scans,
            "writes_admitted_per_shard": {
                str(shard): count
                for shard, count in sorted(
                    self.writes_admitted_per_shard.items()
                )
            },
            "writes_rejected_per_shard": {
                str(shard): count
                for shard, count in sorted(
                    self.writes_rejected_per_shard.items()
                )
            },
            "writes_delayed_per_shard": {
                str(shard): count
                for shard, count in sorted(
                    self.writes_delayed_per_shard.items()
                )
            },
        }


#: Stand-in snapshot for a shard that has never answered a stats poll:
#: healthy-looking, so admission does not backpressure the survivors.
_NEUTRAL_STATS = StoreStats(
    memtable_entries=0,
    memtable_bytes=0,
    sealed_memtables=0,
    num_memtables=2,
    disk_components=0,
    components_per_level={},
    quarantined_runs=0,
    merges_completed=0,
    write_stalls=0,
    stall_seconds_total=0.0,
    wal_bytes=0,
    write_stalled=False,
    write_headroom=1.0,
    throttle_sleep_seconds=0.0,
    block_cache_hit_rate=0.0,
    block_cache_used_bytes=0,
)


def _stats_from_wire(engine: dict) -> StoreStats:
    """Rebuild a :class:`StoreStats` from a backend STATS response."""
    fields_dict = dict(engine)
    fields_dict["components_per_level"] = {
        int(level): count
        for level, count in fields_dict.get(
            "components_per_level", {}
        ).items()
    }
    return StoreStats(**fields_dict)


class ClusterRouter(FramedServer):
    """Route the framed-JSON protocol across per-shard KV backends."""

    def __init__(
        self,
        backends: Sequence[tuple[str, int]],
        ring: HashRing | None = None,
        admission: ClusterAdmission | None = None,
        stats_fn: Callable[[], Sequence[StoreStats]] | None = None,
        maintenance_fn: Callable[[], object] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_client_options: dict | None = None,
        stats_max_age: float = DEFAULT_STATS_MAX_AGE,
        breaker_options: dict | None = None,
        metrics_port: int | None = None,
        replica_backends: Sequence[Sequence[tuple[str, int]]] | None = None,
        read_from_replica: bool = False,
        obs: Observability | None = None,
        memory_fn: Callable[[], object] | None = None,
        memory_interval: float = 1.0,
        wire: str = "binary",
    ) -> None:
        if not backends:
            raise ConfigurationError("a cluster needs at least one backend")
        if stats_max_age < 0:
            raise ConfigurationError("stats_max_age cannot be negative")
        if replica_backends is not None and len(replica_backends) != len(
            backends
        ):
            raise ConfigurationError(
                "replica_backends must list one follower set per shard"
            )
        super().__init__(host, port, metrics_port=metrics_port, wire=wire)
        # A caller may share its bundle (LocalCluster hands the memory
        # arbiter the same one) so arbiter events surface through the
        # router's EVENTS verb alongside its own.
        self.obs = obs if obs is not None else Observability()
        if memory_fn is not None:
            self.attach_ticker(memory_fn, memory_interval)
        self._backends = list(backends)
        self._ring = ring or HashRing(len(backends))
        if self._ring.num_shards != len(backends):
            raise ConfigurationError(
                f"ring routes to {self._ring.num_shards} shards but "
                f"{len(backends)} backends were given"
            )
        self._admission = admission or build_cluster_admission(
            "local", "none", len(backends)
        )
        self._stats_fn = stats_fn
        self._maintenance_fn = maintenance_fn
        options = dict(
            DEFAULT_SHARD_CLIENT_OPTIONS, **(shard_client_options or {})
        )
        # Shard hops default to the router's own wire: a binary router
        # keeps keys as raw bytes end to end instead of re-base64ing at
        # every hop. Callers can still pin shard connections to JSON via
        # shard_client_options.
        options.setdefault("wire", wire)
        self._clients = []
        for index, (backend_host, backend_port) in enumerate(
            self._backends
        ):
            per_shard = dict(options)
            # Deterministic but distinct jitter streams per shard: the
            # whole point of jitter is that the pools don't retry in
            # lock-step against a recovering backend.
            per_shard.setdefault("jitter_seed", index)
            self._clients.append(
                KVClient(backend_host, backend_port, **per_shard)
            )
        self.breakers = [
            CircuitBreaker(
                **(breaker_options or {}),
                on_transition=self._breaker_listener(index),
            )
            for index in range(len(self._backends))
        ]
        self._shard_client_base = options
        self._read_from_replica = read_from_replica
        self._replica_backends: list[list[tuple[str, int]]] = [
            list(group) for group in (replica_backends or [])
        ] or [[] for _ in self._backends]
        self._replica_clients: list[list[KVClient]] = []
        for shard, group in enumerate(self._replica_backends):
            self._replica_clients.append(
                [
                    KVClient(
                        replica_host,
                        replica_port,
                        **dict(options, jitter_seed=1000 + shard),
                    )
                    for replica_host, replica_port in group
                ]
            )
        if read_from_replica and not any(self._replica_backends):
            raise ConfigurationError(
                "read_from_replica needs at least one follower"
            )
        self._epochs = [0 for _ in self._backends]
        self.promotions = 0
        self._promotion_tasks: dict[int, asyncio.Task] = {}
        self._stats_max_age = stats_max_age
        self._stats_cache: list[StoreStats] | None = None
        self._stats_stamp = 0.0
        self.metrics = ClusterMetrics()

    @property
    def num_shards(self) -> int:
        """How many shard backends the router fans out to."""
        return len(self._backends)

    @property
    def ring(self) -> HashRing:
        """The key-routing ring (shared with the sharded store)."""
        return self._ring

    @property
    def admission(self) -> ClusterAdmission:
        """The cluster admission layer."""
        return self._admission

    def _breaker_listener(self, shard: int):
        """A per-shard callback tracing breaker state changes.

        An open breaker on a shard with followers is the failover
        trigger: detection (PR 3) turns into survival by promoting the
        most-caught-up follower instead of waiting out the cooldown.
        """

        def on_transition(old: str, new: str) -> None:
            self.obs.tracer.emit(
                obs_events.BREAKER, shard=shard, old=old, new=new
            )
            if new == OPEN:
                self._schedule_promotion(shard)

        return on_transition

    # -- failover ---------------------------------------------------------

    def _schedule_promotion(self, shard: int) -> None:
        """Kick off a promotion task for ``shard`` (at most one at a time).

        Breaker transitions can fire outside a running event loop (unit
        tests driving breakers directly); without a loop there is no one
        to promote, so the trigger is silently skipped.
        """
        if not self._replica_clients[shard]:
            return
        existing = self._promotion_tasks.get(shard)
        if existing is not None and not existing.done():
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        self._promotion_tasks[shard] = loop.create_task(
            self._promote_shard(shard), name=f"promote-shard-{shard}"
        )

    async def _promote_shard(self, shard: int) -> None:
        """Promote the most-caught-up follower to shard leader.

        Every follower is probed for its replication cursor; the one
        with the highest ``(epoch, generation, applied)`` — i.e. the
        most acked writes — wins, which is exactly what makes the
        zero-lost-acked guarantee hold under ``quorum``: any acked
        write reached a majority, and the majority's maximum cursor
        contains it. The survivors are handed to the new leader to
        re-attach, the router's shard client is swapped, and the
        breaker is reset so traffic flows immediately.
        """
        followers = self._replica_clients[shard]
        statuses = await asyncio.gather(
            *(client.replica_status() for client in followers),
            return_exceptions=True,
        )
        candidates = [
            (
                status["epoch"],
                status["generation"],
                status["applied"],
                index,
            )
            for index, status in enumerate(statuses)
            if not isinstance(status, BaseException)
        ]
        if not candidates:
            # No follower answered either; leave the breaker cooling
            # down — a later open transition retries the promotion.
            return
        _epoch, _generation, _applied, winner = max(candidates)
        epoch = self._epochs[shard] + 1
        peers = [
            address
            for index, address in enumerate(self._replica_backends[shard])
            if index != winner
        ]
        try:
            await followers[winner].promote(epoch, peers)
        except ServerError:
            return  # promotion failed; breaker stays open, retried later
        new_leader = self._replica_backends[shard][winner]
        promoted_client = followers.pop(winner)
        self._replica_backends[shard] = peers
        old_client = self._clients[shard]
        self._backends[shard] = new_leader
        self._clients[shard] = KVClient(
            *new_leader,
            **dict(self._shard_client_base, jitter_seed=shard),
        )
        await promoted_client.aclose()
        await old_client.aclose()
        self._epochs[shard] = epoch
        self.promotions += 1
        self.breakers[shard].reset()
        self.obs.tracer.emit(
            obs_events.REPLICA_PROMOTE,
            shard=shard,
            epoch=epoch,
            survivors=len(peers),
        )

    def shard_retries(self) -> int:
        """Total backend retries absorbed inside the router."""
        return sum(
            client.telemetry.retries_total for client in self._clients
        )

    async def aclose(self) -> None:
        """Stop serving and close every shard and replica client."""
        for task in self._promotion_tasks.values():
            task.cancel()
        if self._promotion_tasks:
            await asyncio.gather(
                *self._promotion_tasks.values(), return_exceptions=True
            )
            self._promotion_tasks = {}
        await super().aclose()
        for client in self._clients:
            await client.aclose()
        for group in self._replica_clients:
            for client in group:
                await client.aclose()

    # -- cluster state ----------------------------------------------------

    async def _snapshots(self, force: bool = False) -> list[StoreStats]:
        """Per-shard engine snapshots, direct or polled with a TTL."""
        if self._stats_fn is not None:
            return list(await asyncio.to_thread(self._stats_fn))
        now = time.monotonic()
        if (
            not force
            and self._stats_cache is not None
            and now - self._stats_stamp <= self._stats_max_age
        ):
            return self._stats_cache
        responses = await asyncio.gather(
            *(
                self._shard_request(shard, protocol.stats_request())
                for shard in range(len(self._clients))
            ),
            return_exceptions=True,
        )
        snapshots: list[StoreStats] = []
        for shard, response in enumerate(responses):
            if isinstance(response, BaseException):
                if not isinstance(response, ServerError):
                    raise response
                # A dead shard must not take stats (and with them every
                # admission decision) down: fall back to its last known
                # snapshot, or a neutral one before any poll succeeded.
                if self._stats_cache is not None:
                    snapshots.append(self._stats_cache[shard])
                else:
                    snapshots.append(_NEUTRAL_STATS)
            else:
                snapshots.append(
                    _stats_from_wire(response.get("engine", {}))
                )
        self._stats_cache = snapshots
        self._stats_stamp = now
        return self._stats_cache

    async def _pump(self) -> None:
        """Advance the cluster's shared-budget maintenance, if wired."""
        if self._maintenance_fn is not None:
            await asyncio.to_thread(self._maintenance_fn)

    # -- shard health -----------------------------------------------------

    def shard_health(self) -> dict[str, str]:
        """Per-shard breaker state (``closed``/``open``/``half_open``)."""
        return {
            str(shard): breaker.state
            for shard, breaker in enumerate(self.breakers)
        }

    @property
    def epochs(self) -> list[int]:
        """Current leadership epoch per shard (0 = never failed over)."""
        return list(self._epochs)

    async def _shard_request(self, shard: int, message: dict) -> dict:
        """One backend request, guarded and scored by the shard breaker.

        Raises :class:`~repro.errors.ShardDownError` without touching
        the network when the breaker is open. Transport-dead outcomes
        (the shard client exhausted its retries against an unreachable
        backend) count as breaker failures; an answering backend —
        including one answering ``STALLED`` — counts as alive.
        """
        breaker = self.breakers[shard]
        if not breaker.allow():
            raise ShardDownError(
                shard,
                "circuit breaker open",
                retry_after=breaker.retry_after() or 0.05,
            )
        try:
            response = await self._clients[shard].request(message)
        except RequestFailedError:
            # The backend answered, just unhappily: it is alive.
            breaker.record_success()
            raise
        except RetriesExhaustedError as error:
            if isinstance(error.last_error, RequestFailedError):
                # Every attempt got a STALLED response — slow, not dead.
                breaker.record_success()
                raise
            breaker.record_failure()
            raise ShardDownError(
                shard,
                f"unreachable: {error.last_error or error}",
                retry_after=breaker.retry_after() or 0.05,
            ) from error
        except (ConnectionError, OSError, asyncio.TimeoutError) as error:
            breaker.record_failure()
            raise ShardDownError(
                shard,
                f"unreachable: {error}",
                retry_after=breaker.retry_after() or 0.05,
            ) from error
        breaker.record_success()
        return response

    # -- the admission + forwarding pipeline ------------------------------

    async def _admitted_forward(
        self,
        nbytes_by_shard: dict[int, int],
        forward,
    ) -> dict:
        """Run one write through cluster admission, then forward it.

        ``forward`` is an async callable performing the actual backend
        request(s) once the write is admitted. Backend ``STALLED``
        responses that outlive the shard client's retry budget surface
        to the caller as a ``STALLED`` rejection.

        The response's latency ``breakdown`` is the backend's (engine
        and I/O legs measured where they happened) with the *cluster*
        admission wait folded into its ``admission`` leg; ``total`` and
        ``queue`` are recomputed by this tier's dispatch, so they
        reflect the router — the outermost tier a client talks to.
        """
        admission_wait = 0.0
        nbytes = sum(nbytes_by_shard.values())

        def rejection(response: dict) -> dict:
            response["breakdown"] = {
                "admission": admission_wait, "engine": 0.0, "io": 0.0,
            }
            return response

        snapshots = await self._snapshots()
        decision = self._admission.decide_many(nbytes_by_shard, snapshots)
        if decision.action == REJECT:
            # Shedding load must not starve the maintenance that would
            # clear the stall: pump the shared budget before bouncing.
            await self._pump()
            for shard in nbytes_by_shard:
                self.metrics.record_rejected(shard)
            self.obs.tracer.emit(
                obs_events.ADMISSION,
                action="reject",
                reason=decision.reason or "cluster admission",
                nbytes=nbytes,
                shards=sorted(nbytes_by_shard),
            )
            return rejection(protocol.error_response(
                protocol.CODE_STALLED,
                decision.reason or "write rejected by cluster admission",
                retry_after=decision.retry_after,
            ))
        if decision.delay_seconds > 0.0:
            for shard in nbytes_by_shard:
                self.metrics.record_delayed(shard, decision.delay_seconds)
            self.obs.tracer.emit(
                obs_events.ADMISSION,
                action="delay",
                seconds=decision.delay_seconds,
                nbytes=nbytes,
                shards=sorted(nbytes_by_shard),
            )
            admission_wait += decision.delay_seconds
            await self._pump()
            await asyncio.sleep(decision.delay_seconds)
        try:
            response = await forward()
        except ShardDownError as error:
            # Fail fast with an honest cooldown hint instead of hanging
            # the write through N doomed transport retries.
            self.metrics.shard_down_rejections += 1
            for shard in nbytes_by_shard:
                self.metrics.record_rejected(shard)
            return rejection(protocol.error_response(
                protocol.CODE_SHARD_DOWN,
                str(error),
                retry_after=error.retry_after,
            ))
        except RequestFailedError as error:
            for shard in nbytes_by_shard:
                self.metrics.record_rejected(shard)
            return rejection(protocol.error_response(
                error.code, str(error), retry_after=error.retry_after
            ))
        except ServerError as error:
            for shard in nbytes_by_shard:
                self.metrics.record_rejected(shard)
            return rejection(protocol.error_response(
                protocol.CODE_STALLED,
                f"shard retries exhausted: {error}",
                retry_after=self._admission.stall_pause or 0.05,
            ))
        for shard in nbytes_by_shard:
            self.metrics.record_admitted(shard)
        # Successful writes co-fund cluster maintenance: under local
        # admission, traffic on healthy shards keeps paying the shared
        # budget that drains a stalled sibling's backlog.
        await self._pump()
        breakdown = response.setdefault(
            "breakdown", {"engine": 0.0, "io": 0.0}
        )
        breakdown["admission"] = (
            breakdown.get("admission", 0.0) + admission_wait
        )
        return response

    # -- verbs ------------------------------------------------------------

    async def _op_put(self, message: dict) -> dict:
        key = protocol.request_key(message)
        value = protocol.request_value(message)
        shard = self._ring.shard_for(key)

        async def forward() -> dict:
            return await self._shard_request(shard, message)

        return await self._admitted_forward(
            {shard: len(key) + len(value)}, forward
        )

    async def _op_del(self, message: dict) -> dict:
        key = protocol.request_key(message)
        shard = self._ring.shard_for(key)

        async def forward() -> dict:
            return await self._shard_request(shard, message)

        return await self._admitted_forward({shard: len(key)}, forward)

    async def _op_batch(self, message: dict) -> dict:
        ops = protocol.batch_ops(message)
        groups: dict[int, list[tuple[bytes, bytes | None]]] = {}
        nbytes_by_shard: dict[int, int] = {}
        for key, value in ops:
            shard = self._ring.shard_for(key)
            groups.setdefault(shard, []).append((key, value))
            nbytes_by_shard[shard] = nbytes_by_shard.get(shard, 0) + (
                len(key) + (0 if value is None else len(value))
            )

        async def forward() -> dict:
            # A shard already cooling down fails the whole batch before
            # any sub-batch is sent, so a breaker-open shard cannot
            # cause avoidable partial application.
            for shard in sorted(groups):
                breaker = self.breakers[shard]
                if breaker.state == OPEN:
                    raise ShardDownError(
                        shard,
                        "circuit breaker open",
                        retry_after=breaker.retry_after() or 0.05,
                    )
            await asyncio.gather(
                *(
                    self._shard_request(
                        shard, protocol.batch_request(groups[shard])
                    )
                    for shard in sorted(groups)
                )
            )
            return protocol.ok_response(count=len(ops))

        return await self._admitted_forward(nbytes_by_shard, forward)

    async def _op_get(self, message: dict) -> dict:
        key = protocol.request_key(message)
        self.metrics.reads_total += 1
        try:
            return await self._shard_request(
                self._ring.shard_for(key), message
            )
        except ShardDownError as error:
            self.metrics.shard_down_rejections += 1
            return protocol.error_response(
                protocol.CODE_SHARD_DOWN,
                str(error),
                retry_after=error.retry_after,
            )
        except RequestFailedError as error:
            return protocol.error_response(
                error.code, str(error), retry_after=error.retry_after
            )
        except ServerError as error:
            return protocol.error_response(
                protocol.CODE_INTERNAL, f"shard read failed: {error}"
            )

    async def _scan_shard(
        self,
        shard: int,
        lo: bytes | None,
        hi: bytes | None,
        limit: int | None,
    ) -> tuple[list[tuple[bytes, bytes]], bool, int]:
        """One shard's slice of a scan: ``(items, replica_read, staleness)``.

        With ``read_from_replica`` the scan is served by the shard's
        first answering follower — cheaper for the leader, stale by at
        most the follower's unapplied shipping backlog, which is
        reported so the caller can judge the trade. Followers that
        don't answer (or when the feature is off) fall back to the
        leader through the breaker-guarded path.
        """
        request = protocol.scan_request(lo, hi, limit)
        if self._read_from_replica:
            for client in self._replica_clients[shard]:
                try:
                    response = await client.request(request)
                except ServerError:
                    continue  # next follower, else the leader
                return (
                    [
                        (
                            protocol.b64decode(key),
                            protocol.b64decode(value),
                        )
                        for key, value in response.get("items", [])
                    ],
                    bool(response.get("replica_read", False)),
                    int(response.get("staleness_bytes", 0)),
                )
        response = await self._shard_request(shard, request)
        return (
            [
                (protocol.b64decode(key), protocol.b64decode(value))
                for key, value in response.get("items", [])
            ],
            False,
            0,
        )

    async def _op_scan(self, message: dict) -> dict:
        lo, hi, limit = protocol.scan_bounds(message)
        self.metrics.reads_total += 1
        self.metrics.scans_total += 1
        results = await asyncio.gather(
            *(
                self._scan_shard(shard, lo, hi, limit)
                for shard in range(len(self._clients))
            ),
            return_exceptions=True,
        )
        per_shard: list[list[tuple[bytes, bytes]]] = []
        missing: list[int] = []
        replica_read = False
        staleness_bytes = 0
        for shard, result in enumerate(results):
            if isinstance(result, BaseException):
                if not isinstance(result, ServerError):
                    raise result  # programming error, not a dead shard
                missing.append(shard)
            else:
                shard_items, from_replica, staleness = result
                per_shard.append(shard_items)
                replica_read = replica_read or from_replica
                staleness_bytes = max(staleness_bytes, staleness)
        if missing:
            # Partial answer over the surviving shards, honestly
            # labelled, instead of failing every range read because one
            # hash slice is dark.
            self.metrics.degraded_scans += 1
        items: list[tuple[bytes, bytes]] = []
        for item in heapq.merge(*per_shard, key=itemgetter(0)):
            items.append(item)
            if limit is not None and len(items) >= limit:
                break
        return protocol.ok_response(
            items=[
                [protocol.b64encode(key), protocol.b64encode(value)]
                for key, value in items
            ],
            degraded=bool(missing),
            missing_shards=missing,
            replica_read=replica_read,
            staleness_bytes=staleness_bytes,
        )

    # -- observability -----------------------------------------------------

    def _sync_registry(self) -> dict:
        """Mirror :class:`ClusterMetrics` into the registry, then snapshot.

        Like the single server, the dataclass stays the source of truth
        for ``STATS``; the registry view exists so one Prometheus scrape
        of the router shows routing counters next to the rolled-up
        engine and shard series.
        """
        registry = self.obs.registry
        per_shard_fields = {
            "writes_admitted_per_shard": "router_shard_writes_admitted_total",
            "writes_rejected_per_shard": "router_shard_writes_rejected_total",
            "writes_delayed_per_shard": "router_shard_writes_delayed_total",
        }
        for name, value in self.metrics.snapshot().items():
            if name == "connections_open":
                registry.gauge(
                    "router_connections_open",
                    help="Currently open client connections.",
                ).set(value)
                continue
            if name in per_shard_fields:
                for shard, count in value.items():
                    registry.counter(
                        per_shard_fields[name],
                        labels={"shard": str(shard)},
                        help="Per-shard routing outcome counts.",
                    ).set_total(count)
                continue
            suffix = (
                "_seconds_total" if name.endswith("_seconds_total") else
                "_total"
            )
            base = name.removesuffix("_seconds_total").removesuffix("_total")
            registry.counter(
                f"router_{base}{suffix}",
                help=f"Router cumulative {name.replace('_', ' ')}.",
            ).set_total(value)
        registry.counter(
            "router_promotions_total",
            help="Follower-to-leader promotions performed on failover.",
        ).set_total(self.promotions)
        for shard, breaker in enumerate(self.breakers):
            registry.counter(
                "router_breaker_trips_total",
                labels={"shard": str(shard)},
                help="Circuit-breaker trips (closed/half-open to open).",
            ).set_total(breaker.trips)
            registry.gauge(
                "router_breaker_open",
                labels={"shard": str(shard)},
                help="1 when the shard's breaker is open, else 0.",
            ).set(1.0 if breaker.state == OPEN else 0.0)
        return registry.snapshot()

    async def metrics_snapshot(self) -> dict:
        """Cluster-wide metrics: router tier plus every live shard.

        Each shard's registry snapshot is relabelled (``tier="shard"``,
        ``shard="N"``) and merged bucket-by-bucket with the router's own
        (``tier="router"``), so percentiles read from the merged
        histograms are correct — never per-shard percentiles summed.
        A dead shard is simply absent from the scrape.
        """
        responses = await asyncio.gather(
            *(
                self._shard_request(shard, protocol.metrics_request())
                for shard in range(len(self._clients))
            ),
            return_exceptions=True,
        )
        snapshots = [
            relabel_snapshot(self._sync_registry(), {"tier": "router"})
        ]
        for shard, response in enumerate(responses):
            if isinstance(response, BaseException):
                if not isinstance(response, ServerError):
                    raise response
                continue  # dark shard: report the survivors
            snapshots.append(
                relabel_snapshot(
                    response.get("metrics", {}),
                    {"tier": "shard", "shard": str(shard)},
                )
            )
        return merge_snapshots(snapshots)

    async def events_since(self, since: int, limit: int | None) -> list:
        """Cluster-wide event view: shard rings merged with the router's.

        ``since`` applies per source ring (sequence numbers are local to
        each tracer); every shard event gains a ``shard`` field, and the
        merged stream is time-ordered, keeping the most recent ``limit``
        events. Dead shards contribute nothing rather than failing the
        read.
        """
        responses = await asyncio.gather(
            *(
                self._shard_request(
                    shard, protocol.events_request(since, limit)
                )
                for shard in range(len(self._clients))
            ),
            return_exceptions=True,
        )
        streams = [self.obs.tracer.events(since, limit)]
        for shard, response in enumerate(responses):
            if isinstance(response, BaseException):
                if not isinstance(response, ServerError):
                    raise response
                continue
            stream = []
            for wire in response.get("events", []):
                event = Event.from_wire(wire)
                stream.append(
                    Event(
                        seq=event.seq,
                        timestamp=event.timestamp,
                        kind=event.kind,
                        fields=dict(event.fields, shard=shard),
                    )
                )
            streams.append(stream)
        return merge_events(streams, limit)

    async def _op_stats(self, message: dict) -> dict:
        snapshots = await self._snapshots(force=True)
        cluster = aggregate_stats(snapshots)
        router_view = self.metrics.snapshot()
        router_view["shard_health"] = self.shard_health()
        router_view["breaker_trips"] = sum(
            breaker.trips for breaker in self.breakers
        )
        router_view["promotions"] = self.promotions
        router_view["shard_epochs"] = {
            str(shard): epoch for shard, epoch in enumerate(self._epochs)
        }
        router_view["replicas_per_shard"] = {
            str(shard): len(group)
            for shard, group in enumerate(self._replica_backends)
        }
        router_view["read_from_replica"] = self._read_from_replica
        return protocol.ok_response(
            cluster=cluster.snapshot(),
            router=router_view,
            admission_mode=self._admission.mode,
        )


class LocalCluster:
    """One process, full cluster: sharded store + backends + router.

    The deployment shape behind ``python -m repro cluster-serve``, the
    hot-shard example, and the integration tests: every shard engine is
    served by an in-process :class:`KVServer` on an ephemeral port, and
    the router gets *direct* stats/maintenance hooks into the sharded
    store (fresh snapshots, deterministic pumping) instead of polling
    its own backends over TCP.
    """

    def __init__(
        self,
        directory: str,
        num_shards: int = 4,
        options: StoreOptions | None = None,
        admission: ClusterAdmission | None = None,
        ring: HashRing | None = None,
        arbiter: str = "fair",
        pump_budget: int | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_client_options: dict | None = None,
        write_deadline: float = 10.0,
        breaker_options: dict | None = None,
        metrics_port: int | None = None,
        replicas: int = 0,
        ack_policy: str = "leader_only",
        read_from_replica: bool = False,
        replication_timeout: float | None = None,
        memory_budget: int | None = None,
        memory_rebalance_interval: float = 1.0,
        repair_interval: float = 0.0,
        wire: str = "binary",
    ) -> None:
        if replicas < 0:
            raise ConfigurationError("replicas cannot be negative")
        if repair_interval < 0:
            raise ConfigurationError("repair_interval cannot be negative")
        if read_from_replica and replicas == 0:
            raise ConfigurationError(
                "read_from_replica needs at least one replica per shard"
            )
        if memory_budget is not None and memory_budget <= 0:
            raise ConfigurationError("memory budget must be positive")
        if memory_rebalance_interval <= 0:
            raise ConfigurationError(
                "memory rebalance interval must be positive"
            )
        self.store = ShardedStore(
            directory,
            num_shards,
            options,
            ring=ring,
            arbiter=arbiter,
            pump_budget=pump_budget,
        )
        # The router and the memory arbiter share one bundle, so
        # memory_rebalance events ride the cluster EVENTS verb and the
        # arbiter's gauges land in the router-tier scrape.
        self._obs = Observability()
        self.memory_arbiter = None
        if memory_budget is not None:
            try:
                self.memory_arbiter = self.store.enable_memory_arbiter(
                    memory_budget,
                    obs=self._obs,
                    interval=memory_rebalance_interval,
                )
            except BaseException:
                self.store.close()
                raise
        self._directory = directory
        self._options = options
        self._admission = admission
        self._host = host
        self._port = port
        self._shard_client_options = shard_client_options
        self._write_deadline = write_deadline
        self._breaker_options = breaker_options
        self._metrics_port = metrics_port
        self._replicas = replicas
        self._ack_policy = ack_policy
        self._read_from_replica = read_from_replica
        self._replication_timeout = replication_timeout
        self._memory_rebalance_interval = memory_rebalance_interval
        self._repair_interval = repair_interval
        self._wire = wire
        self.backends: list[KVServer] = []
        self.replica_stores: list[list] = []
        self.replica_servers: list[list] = []
        self.router: ClusterRouter | None = None

    @property
    def replicas(self) -> int:
        """Followers per shard (0 = unreplicated single-copy shards)."""
        return self._replicas

    async def _start_replica_group(self, shard: int, engine) -> KVServer:
        """Boot one shard's replica group; returns the leader backend."""
        import os

        from ..engine.datastore import LSMStore
        from ..replication import (
            DEFAULT_REPLICATION_TIMEOUT,
            ReplicatedKVServer,
        )

        timeout = self._replication_timeout or DEFAULT_REPLICATION_TIMEOUT
        followers: list[KVServer] = []
        stores = []
        for index in range(self._replicas):
            store = LSMStore.open(
                os.path.join(
                    self._directory, f"replica-{shard:02d}-{index}"
                ),
                self._options,
            )
            stores.append(store)
            follower = ReplicatedKVServer(
                store,
                host=self._host,
                port=0,
                write_deadline=self._write_deadline,
                role="follower",
                ack_policy=self._ack_policy,
                replication_timeout=timeout,
            )
            await follower.start()
            followers.append(follower)
        leader = ReplicatedKVServer(
            engine,
            host=self._host,
            port=0,
            write_deadline=self._write_deadline,
            role="leader",
            ack_policy=self._ack_policy,
            replication_timeout=timeout,
            repair_interval=self._repair_interval,
        )
        await leader.start()
        await leader.become_leader(
            0,
            [
                KVClient(*follower.address, pool_size=1, max_retries=1)
                for follower in followers
            ],
        )
        self.replica_stores.append(stores)
        self.replica_servers.append(followers)
        return leader

    async def start(self) -> tuple[str, int]:
        """Boot backends (and replica groups) and the router."""
        try:
            for shard, engine in enumerate(self.store.engines()):
                if self._replicas > 0:
                    backend = await self._start_replica_group(shard, engine)
                else:
                    backend = KVServer(
                        engine,
                        host=self._host,
                        port=0,
                        write_deadline=self._write_deadline,
                    )
                    await backend.start()
                self.backends.append(backend)
            self.router = ClusterRouter(
                backends=[backend.address for backend in self.backends],
                ring=self.store.ring,
                admission=self._admission,
                stats_fn=self.store.stats_list,
                maintenance_fn=self.store.pump,
                host=self._host,
                port=self._port,
                shard_client_options=self._shard_client_options,
                breaker_options=self._breaker_options,
                metrics_port=self._metrics_port,
                replica_backends=[
                    [server.address for server in group]
                    for group in self.replica_servers
                ]
                if self._replicas > 0
                else None,
                read_from_replica=self._read_from_replica,
                obs=self._obs,
                memory_fn=(
                    self.memory_arbiter.maybe_tick
                    if self.memory_arbiter is not None
                    else None
                ),
                memory_interval=self._memory_rebalance_interval,
                wire=self._wire,
            )
            return await self.router.start()
        except BaseException:
            await self.aclose()
            raise

    @property
    def address(self) -> tuple[str, int]:
        """The router's bound (host, port); valid after :meth:`start`."""
        if self.router is None:
            raise ConfigurationError("cluster is not started")
        return self.router.address

    async def serve_forever(self) -> None:
        """Serve through the router until cancelled."""
        if self.router is None:
            await self.start()
        assert self.router is not None
        await self.router.serve_forever()

    # -- chaos hooks ------------------------------------------------------

    async def kill_shard(self, shard: int) -> None:
        """Stop one shard's backend server (the engine stays intact).

        Models a crashed/partitioned serving process: in-flight and
        future connections to the shard fail at the transport level
        until :meth:`restore_shard` rebinds the same address. Already-
        acked data is safe — the engine underneath is untouched.
        """
        if not 0 <= shard < len(self.backends):
            raise ConfigurationError(f"no such shard {shard}")
        await self.backends[shard].aclose()

    async def restore_shard(self, shard: int) -> None:
        """Bring a killed shard's backend server back on its old port.

        Only valid without replicas: in a replicated cluster the router
        promotes a follower when the leader dies, so rebinding the old
        leader's address would resurrect a deposed head behind the
        router's back (split-brain). Failed members of a replica group
        rejoin by being re-added as fresh followers, not restored.
        """
        if self._replicas > 0:
            raise ConfigurationError(
                "restore_shard is not supported with replicas; "
                "failover promotes a follower instead"
            )
        if not 0 <= shard < len(self.backends):
            raise ConfigurationError(f"no such shard {shard}")
        old = self.backends[shard]
        host, port = old.address
        backend = KVServer(
            self.store.engine(shard),
            host=host,
            port=port,
            write_deadline=self._write_deadline,
        )
        await backend.start()
        self.backends[shard] = backend

    async def aclose(self) -> None:
        """Tear the whole stack down: router, backends, engines."""
        if self.router is not None:
            await self.router.aclose()
            self.router = None
        for backend in self.backends:
            await backend.aclose()
        self.backends = []
        for group in self.replica_servers:
            for server in group:
                await server.aclose()
        self.replica_servers = []
        for stores in self.replica_stores:
            for store in stores:
                store.close()
        self.replica_stores = []
        self.store.close()

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
