"""Online shard migration: move a shard to a new engine under live writes.

The protocol is the classic dual-write-then-copy dance:

1. **Attach** a fresh engine as the shard's *mirror*: from this moment
   every mutation routed to the shard is applied to both the primary
   and the mirror (:meth:`~repro.cluster.sharded.ShardedStore._apply`).
2. **Copy** the primary's live records page by page into the mirror.
   Each page is read and written under the shard's write lock, so a
   page is internally consistent; between pages writes flow freely.
   Because the primary keeps receiving every write during the
   migration, a page read from it is always current — a key mutated
   after the copier passed its position is caught by the dual-write,
   and a key mutated before is re-read at its new value. Deleted keys
   simply never appear in a page, and the mirror saw their tombstones.
3. **Cut over** under the shard lock: the mirror becomes the primary,
   and the old engine is closed (after an optional full-scan
   equivalence check).

The mirror is opened with ``stall_mode="block"`` regardless of the
cluster's serving options: a migration target that rejected writes
would push its stalls into the *live* write path through the
dual-write, which is exactly what a rebalance must not do — the copy
loop simply slows down while the mirror's inline maintenance catches
up (the paper's graceful interaction, applied to migration traffic).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..engine.datastore import LSMStore
from ..engine.options import StoreOptions
from ..errors import ConfigurationError
from .sharded import ShardedStore

#: Records copied per locked page; small pages bound write-path latency
#: during migration, large pages finish the copy in fewer lock grabs.
DEFAULT_PAGE_SIZE = 256


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one :func:`migrate_shard` run."""

    shard: int
    target_directory: str
    records_copied: int
    pages: int
    verified: bool

    def summary(self) -> str:
        """One-line human-readable result."""
        checked = "verified" if self.verified else "unverified"
        return (
            f"shard {self.shard} -> {self.target_directory}: "
            f"{self.records_copied} records in {self.pages} pages "
            f"({checked})"
        )


def _next_page_start(last_key: bytes) -> bytes:
    """The smallest key strictly greater than ``last_key``."""
    return last_key + b"\x00"


def migrate_shard(
    store: ShardedStore,
    shard: int,
    target_directory: str,
    options: StoreOptions | None = None,
    page_size: int = DEFAULT_PAGE_SIZE,
    verify: bool = False,
) -> MigrationReport:
    """Stream one shard's records to a new engine while writes flow.

    Returns after the cutover: the shard's primary engine now lives in
    ``target_directory`` and the old engine is closed. With ``verify``
    the full scans of old and new engines are compared under the final
    lock before cutting over (test-scale safety net).
    """
    if not 0 <= shard < store.num_shards:
        raise ConfigurationError(f"shard {shard} out of range")
    if page_size < 1:
        raise ConfigurationError("page size must be positive")
    if os.path.exists(target_directory) and os.listdir(target_directory):
        raise ConfigurationError(
            f"migration target {target_directory!r} is not empty"
        )
    mirror_options = (options or store.options).with_(
        stall_mode="block", background_maintenance=False
    )
    mirror = LSMStore.open(target_directory, mirror_options)
    store.attach_mirror(shard, mirror)
    source = store.engine(shard)
    records_copied = 0
    pages = 0
    try:
        lo: bytes | None = None
        while True:
            with store.shard_lock(shard):
                page = list(source.scan(lo=lo, limit=page_size))
                if page:
                    mirror.write_batch(page)
            if not page:
                break
            records_copied += len(page)
            pages += 1
            lo = _next_page_start(page[-1][0])
            if len(page) < page_size:
                break
        with store.shard_lock(shard):
            if verify:
                source_items = list(source.scan())
                mirror_items = list(mirror.scan())
                if source_items != mirror_items:
                    raise ConfigurationError(
                        f"migration of shard {shard} diverged: "
                        f"{len(source_items)} source records vs "
                        f"{len(mirror_items)} in the target"
                    )
            old = store.promote_mirror(shard)
        old.close()
    except BaseException:
        abandoned = store.abandon_mirror(shard)
        if abandoned is not None:
            abandoned.close()
        raise
    return MigrationReport(
        shard=shard,
        target_directory=target_directory,
        records_copied=records_copied,
        pages=pages,
        verified=verify,
    )
