"""Global vs. local admission scope for the sharded serving tier.

The paper classifies component constraints as *global* (one limit over
the whole tree) or *local* (per level / per component group). One level
up, the same split reappears across shards, and this module makes it an
explicit knob over PR 1's per-engine controllers
(:mod:`repro.server.admission`):

``global``
    One controller judges every write against the *worst-case* merged
    view of all shard snapshots (:func:`~repro.cluster.stats.worst_case_stats`):
    if any shard is stalled, every write in the cluster is delayed or
    rejected. Simple and conservatively safe — and exactly how one hot
    shard throttles a whole cluster.

``local``
    One controller *per shard*, each judging only writes routed to its
    shard against that shard's own snapshot. A stalled shard
    backpressures its own key range; the rest of the cluster keeps
    serving at full speed. Stateful controllers (``limit``'s token
    bucket) are instantiated per shard, so the rate cap is per-shard
    bandwidth, not a cluster-wide pool.

The base mode (``stop`` / ``limit`` / ``gradual`` / ``none``) still
decides *how* backpressure is applied; the scope decides *how far* one
shard's backpressure reaches.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.datastore import StoreStats
from ..errors import ConfigurationError
from ..server.admission import (
    ADMIT,
    DELAY,
    REJECT,
    AdmissionController,
    AdmissionDecision,
    build_admission,
)
from .stats import worst_case_stats

#: The admission scopes exposed on the CLI.
SCOPES = ("global", "local")


class ClusterAdmission:
    """Scope wrapper: route shard snapshots into per-engine controllers.

    ``controllers`` holds exactly one controller for ``global`` scope,
    or one per shard for ``local`` scope (so stateful modes keep
    independent per-shard state). Use :func:`build_cluster_admission`
    rather than constructing directly.
    """

    def __init__(
        self,
        scope: str,
        controllers: Sequence[AdmissionController],
    ) -> None:
        if scope not in SCOPES:
            raise ConfigurationError(
                f"unknown admission scope {scope!r}; expected one of {SCOPES}"
            )
        if not controllers:
            raise ConfigurationError("need at least one controller")
        if scope == "global" and len(controllers) != 1:
            raise ConfigurationError(
                "global scope uses exactly one controller"
            )
        modes = {controller.mode for controller in controllers}
        if len(modes) != 1:
            raise ConfigurationError(
                f"controllers must share one mode, got {sorted(modes)}"
            )
        self._scope = scope
        self._controllers = list(controllers)

    @property
    def scope(self) -> str:
        """``"global"`` or ``"local"``."""
        return self._scope

    @property
    def base_mode(self) -> str:
        """The wrapped per-engine mode (``stop`` / ``gradual`` / ...)."""
        return self._controllers[0].mode

    @property
    def mode(self) -> str:
        """Combined label, e.g. ``"local:stop"`` (STATS, CLI output)."""
        return f"{self._scope}:{self.base_mode}"

    @property
    def absorbs_stalls(self) -> bool:
        """Whether backend stalls should be absorbed (gradual base)."""
        return self._controllers[0].absorbs_stalls

    @property
    def stall_pause(self) -> float:
        """Pause between absorption retries (gradual base)."""
        return self._controllers[0].stall_pause

    def _controller_for(self, shard: int) -> AdmissionController:
        if self._scope == "global":
            return self._controllers[0]
        return self._controllers[shard]

    def decide(
        self,
        shard: int,
        snapshots: Sequence[StoreStats],
        nbytes: int,
    ) -> AdmissionDecision:
        """Judge one write bound for ``shard`` against the cluster state."""
        if not 0 <= shard < max(len(snapshots), len(self._controllers)):
            raise ConfigurationError(f"shard {shard} out of range")
        if self._scope == "global":
            view = worst_case_stats(snapshots)
        else:
            view = snapshots[shard]
        return self._controller_for(shard).decide(view, nbytes)

    def decide_many(
        self,
        nbytes_by_shard: dict[int, int],
        snapshots: Sequence[StoreStats],
    ) -> AdmissionDecision:
        """Judge a multi-shard batch: the worst shard decision wins.

        Any rejection rejects the batch (longest ``retry_after``);
        otherwise the batch waits out the longest delay; otherwise it is
        admitted.
        """
        if not nbytes_by_shard:
            raise ConfigurationError("batch touches no shards")
        decisions = [
            self.decide(shard, snapshots, nbytes)
            for shard, nbytes in sorted(nbytes_by_shard.items())
        ]
        rejections = [d for d in decisions if d.action == REJECT]
        if rejections:
            return max(rejections, key=lambda d: d.retry_after)
        delays = [d for d in decisions if d.action == DELAY]
        if delays:
            return max(delays, key=lambda d: d.delay_seconds)
        return AdmissionDecision(ADMIT)


def build_cluster_admission(
    scope: str,
    mode: str,
    num_shards: int,
    **params,
) -> ClusterAdmission:
    """Factory: one cluster admission layer over per-engine controllers.

    ``params`` are forwarded to the base mode's constructor (see
    :func:`repro.server.admission.build_admission`). Local scope builds
    ``num_shards`` independent controllers so stateful modes (limit)
    keep per-shard state.
    """
    if scope not in SCOPES:
        raise ConfigurationError(
            f"unknown admission scope {scope!r}; expected one of {SCOPES}"
        )
    if num_shards < 1:
        raise ConfigurationError("need at least one shard")
    count = 1 if scope == "global" else num_shards
    controllers = [build_admission(mode, **params) for _ in range(count)]
    return ClusterAdmission(scope, controllers)
