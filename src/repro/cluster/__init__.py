"""A sharded, multi-engine serving tier over :mod:`repro.engine`.

The paper's component-constraint taxonomy — global versus local — one
level up: a consistent-hash ring maps keys onto N shard engines, a
shared maintenance budget is arbitrated across shards by the same
scheduler classes the paper applies to merges
(:mod:`repro.core.schedulers`), and a cluster admission layer decides
whether one hot shard's write stall backpressures the whole cluster
(``global``) or only its own key range (``local``). An asyncio router
speaks the single-server wire protocol on the front and fans out to
per-shard :class:`~repro.server.KVServer` backends, with scatter-gather
scans and online shard migration under live writes.
"""

from .admission import SCOPES, ClusterAdmission, build_cluster_admission
from .breaker import STATES as BREAKER_STATES
from .breaker import CircuitBreaker
from .rebalance import MigrationReport, migrate_shard
from .ring import HashRing
from .router import ClusterMetrics, ClusterRouter, LocalCluster
from .sharded import ARBITERS, ShardedStore
from .stats import ClusterStats, aggregate_stats, worst_case_stats

__all__ = [
    "ARBITERS",
    "BREAKER_STATES",
    "SCOPES",
    "CircuitBreaker",
    "ClusterAdmission",
    "ClusterMetrics",
    "ClusterRouter",
    "ClusterStats",
    "HashRing",
    "LocalCluster",
    "MigrationReport",
    "ShardedStore",
    "aggregate_stats",
    "build_cluster_admission",
    "migrate_shard",
    "worst_case_stats",
]
