"""Seedable, site-addressed I/O fault injection for the storage engine.

A :class:`FaultPlan` is a list of :class:`FaultRule` triggers. The
engine wraps each durable file it opens via ``plan.wrap(file, site)``
(sites: ``"wal"``, ``"manifest"``, ``"sstable"``), and the resulting
:class:`FaultyFile` counts every ``write`` and ``fsync`` at that site.
When an event's occurrence index matches a rule, the fault fires:

* ``"fail"`` — raise :class:`~repro.errors.FaultInjectedError` *before*
  the I/O takes effect (an EIO-style hard failure);
* ``"torn"`` — persist only the first ``keep_bytes`` of the write, then
  raise (a torn page / partial sector, the crash-consistency classic);
* ``"corrupt"`` — silently persist a bit-rotted version of the payload
  (the write "succeeds"; detection is the checksum layer's problem).

Everything is deterministic: occurrence counting is per plan instance,
and ``"corrupt"`` flips byte positions drawn from a seeded RNG, so a
failing scenario replays exactly from ``(workload seed, plan)``. Fired
rules are recorded in :attr:`FaultPlan.fired` so harnesses can assert
the fault actually happened rather than silently testing the happy path.

The engine never imports this module — ``StoreOptions.fault_plan`` is
duck-typed on ``wrap`` — so production opens pay nothing.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError, FaultInjectedError

#: File sites the engine wraps. Events are ``"<site>.write"`` and
#: ``"<site>.fsync"``.
SITES = ("wal", "manifest", "sstable")

#: Supported fault kinds.
KINDS = ("fail", "torn", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """Fire ``kind`` at the Nth (0-based) occurrence of ``event``.

    ``event`` is ``"<site>.write"`` or ``"<site>.fsync"``, for example
    ``FaultRule("wal.write", 3, "torn", keep_bytes=5)`` tears the fourth
    WAL append after its first five bytes. ``keep_bytes`` only applies
    to ``"torn"``; ``"fsync"`` events only support ``"fail"``.
    """

    event: str
    index: int
    kind: str = "fail"
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        site, _, op = self.event.partition(".")
        if site not in SITES or op not in ("write", "fsync"):
            raise ConfigurationError(f"unknown fault event {self.event!r}")
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if op == "fsync" and self.kind != "fail":
            raise ConfigurationError("fsync faults can only be 'fail'")
        if self.index < 0:
            raise ConfigurationError("fault index cannot be negative")
        if self.keep_bytes < 0:
            raise ConfigurationError("keep_bytes cannot be negative")


class FaultPlan:
    """A deterministic schedule of injected I/O faults.

    One plan instance carries the occurrence counters, so it must not be
    shared between stores whose counts should be independent.
    """

    def __init__(
        self, rules: list[FaultRule] | None = None, seed: int = 0
    ) -> None:
        self._rules: dict[tuple[str, int], FaultRule] = {}
        for rule in rules or []:
            key = (rule.event, rule.index)
            if key in self._rules:
                raise ConfigurationError(
                    f"duplicate fault rule for {rule.event}[{rule.index}]"
                )
            self._rules[key] = rule
        self._rng = random.Random(seed)
        self._counts: dict[str, int] = {}
        #: Human-readable log of every rule that fired, in order.
        self.fired: list[str] = []
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Mirror fired rules into an event tracer.

        Called by the store when it opens with both a fault plan and an
        observability bundle — duck-typed, like ``wrap``, so this module
        still never imports the engine or obs packages.
        """
        self._tracer = tracer

    def occurrences(self, event: str) -> int:
        """How many times ``event`` has happened so far."""
        return self._counts.get(event, 0)

    def _next(self, event: str) -> FaultRule | None:
        index = self._counts.get(event, 0)
        self._counts[event] = index + 1
        rule = self._rules.get((event, index))
        if rule is not None:
            self.fired.append(f"{event}[{index}]:{rule.kind}")
            if self._tracer is not None:
                self._tracer.emit(
                    "fault", event=event, index=index, fault=rule.kind
                )
        return rule

    def corrupt(self, data: bytes) -> bytes:
        """Seeded bit-rot: flip up to 4 byte positions of ``data``."""
        if not data:
            return data
        blob = bytearray(data)
        for _ in range(min(4, len(blob))):
            position = self._rng.randrange(len(blob))
            blob[position] ^= 0xFF  # always changes the byte
        return bytes(blob)

    def wrap(self, file, site: str) -> "FaultyFile":
        """Wrap an open file so its I/O passes through this plan."""
        if site not in SITES:
            raise ConfigurationError(f"unknown fault site {site!r}")
        return FaultyFile(file, site, self)


class FaultyFile:
    """A file proxy that injects the plan's faults at write/fsync time.

    Ducks as the wrapped file for every other attribute (``flush``,
    ``close``, ``closed``, ``fileno``, ...). The engine's fsync helper
    calls :meth:`fsync` when present, so fsync faults are observable
    even though ``os.fsync`` itself takes a file descriptor.
    """

    def __init__(self, file, site: str, plan: FaultPlan) -> None:
        self._file = file
        self._site = site
        self._plan = plan

    def write(self, data):
        rule = self._plan._next(f"{self._site}.write")
        if rule is None:
            return self._file.write(data)
        if rule.kind == "fail":
            raise FaultInjectedError(
                f"injected write failure at {self._site}"
            )
        if rule.kind == "torn":
            kept = data[: rule.keep_bytes]
            if kept:
                self._file.write(kept)
            self._file.flush()
            raise FaultInjectedError(
                f"injected torn write at {self._site} "
                f"({len(kept)}/{len(data)} bytes persisted)"
            )
        # "corrupt": the write appears to succeed.
        if isinstance(data, str):
            corrupted = self._plan.corrupt(data.encode("utf-8"))
            # Replacing bytes with NULs keeps the payload valid UTF-8
            # while guaranteeing the record no longer parses.
            return self._file.write(
                "".join(
                    "\x00" if a != b else chr(b)
                    for a, b in zip(corrupted, data.encode("utf-8"))
                )
            )
        return self._file.write(self._plan.corrupt(bytes(data)))

    def fsync(self) -> None:
        rule = self._plan._next(f"{self._site}.fsync")
        if rule is not None:
            raise FaultInjectedError(
                f"injected fsync failure at {self._site}"
            )
        self._file.flush()
        os.fsync(self._file.fileno())

    def __getattr__(self, name):
        return getattr(self._file, name)
