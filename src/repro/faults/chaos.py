"""Cluster chaos runner: kill a shard mid-load, measure the blast radius.

:func:`run_chaos` boots a :class:`~repro.cluster.LocalCluster`, drives a
seeded write stream through the router, and at scheduled points kills
and restores one shard's backend server. Throughout, it keeps score:

* **error budget** — every op is classified as acked, failed fast with
  ``SHARD_DOWN``, or failed otherwise; fail-fast latency on the dead
  range and P99 latency on surviving ranges are tracked separately
  (the survivors are supposed not to notice).
* **degradation honesty** — a mid-outage scatter scan must come back
  ``degraded`` naming exactly the killed shard.
* **recovery** — after restore, the run measures the time until a write
  to the killed range succeeds again, and records the shard breaker's
  closed→open→half-open→closed transition trail.
* **zero lost acked writes** — after the dust settles, every acked
  key is read back and compared against the model.

With ``replicas > 0`` the schedule becomes a **leader kill**: the dead
leader is never restored; recovery means the router noticed the open
breaker and promoted that shard's most-caught-up follower. The report
then additionally scores promotions, post-failover epochs, and (with
``read_from_replica``) whether mid-outage scans were served by replicas
and how stale they admitted to being. The acceptance bar shifts
accordingly — no degraded scan is required when a follower can serve,
but zero lost acked writes and at least one promotion are.

The run is seeded and scheduled by op index, so two runs with the same
arguments kill the same shard at the same point in the same stream;
wall-clock enters only through the breaker cooldown and pacing sleeps.
``python -m repro chaos`` prints the report and exits non-zero unless
:attr:`ChaosReport.ok`.
"""

from __future__ import annotations

import asyncio
import os
import random
import struct
import time
from dataclasses import asdict, dataclass, field

from ..cluster.breaker import CLOSED
from ..cluster.router import LocalCluster
from ..engine.options import StoreOptions
from ..errors import (
    ConfigurationError,
    RequestFailedError,
    RetriesExhaustedError,
    ServerError,
)
from ..server import protocol
from ..server.client import KVClient


@dataclass
class ChaosReport:
    """Scorecard of one chaos run."""

    ops_total: int = 0
    acked: int = 0
    shard_down_fast_fails: int = 0
    other_errors: int = 0
    degraded_scan_seen: bool = False
    degraded_scan_correct: bool = False
    surviving_p99: float = 0.0
    fail_fast_max: float = 0.0
    recovery_seconds: float = -1.0
    breaker_transitions: list[tuple[str, str]] = field(
        default_factory=list
    )
    lost_acked: int = 0
    final_health: dict[str, str] = field(default_factory=dict)
    replicas: int = 0
    ack_policy: str = "leader_only"
    promotions: int = 0
    shard_epochs: list[int] = field(default_factory=list)
    replica_scan_seen: bool = False
    max_staleness_bytes: int = 0

    @property
    def recovered(self) -> bool:
        """Did writes to the killed range succeed again post-restore?

        In a replicated run "restore" never happens — recovery means a
        follower was promoted and took the killed range's writes.
        """
        return self.recovery_seconds >= 0.0

    @property
    def ok(self) -> bool:
        """The acceptance bar: degrade honestly, recover fully.

        Replicated runs swap the degraded-scan requirement (a follower
        may have served the scan, honestly, without degradation) for a
        promotion requirement: the router must have failed the shard
        over, and every acked write must still read back afterwards.
        """
        if self.replicas > 0:
            return (
                self.lost_acked == 0
                and self.recovered
                and self.promotions >= 1
                and self.other_errors == 0
            )
        return (
            self.lost_acked == 0
            and self.recovered
            and self.degraded_scan_seen
            and self.degraded_scan_correct
            and self.other_errors == 0
        )

    def summary(self) -> str:
        """Multi-line human summary for the CLI."""
        lines = [
            f"ops: {self.ops_total} total, {self.acked} acked, "
            f"{self.shard_down_fast_fails} SHARD_DOWN fail-fasts, "
            f"{self.other_errors} other errors",
            f"surviving-range P99: {self.surviving_p99 * 1000:.2f} ms; "
            f"slowest fail-fast: {self.fail_fast_max * 1000:.2f} ms",
            "degraded scan: "
            + (
                "reported with correct missing shard"
                if self.degraded_scan_seen and self.degraded_scan_correct
                else (
                    "reported with WRONG missing shards"
                    if self.degraded_scan_seen
                    else "NEVER REPORTED"
                )
            ),
            "recovery after restore: "
            + (
                f"{self.recovery_seconds * 1000:.0f} ms"
                if self.recovered
                else "NOT RECOVERED"
            ),
            f"breaker transitions: {self.breaker_transitions}",
            f"lost acked writes: {self.lost_acked}",
            f"final shard health: {self.final_health}",
        ]
        if self.replicas > 0:
            lines.append(
                f"failover: {self.promotions} promotion(s), "
                f"epochs {self.shard_epochs}, "
                f"{self.replicas} replica(s)/shard "
                f"under {self.ack_policy!r}"
            )
            if self.replica_scan_seen:
                lines.append(
                    "replica scan: served mid-outage, staleness "
                    f"<= {self.max_staleness_bytes} bytes"
                )
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready view including the derived verdict fields."""
        payload = asdict(self)
        payload["breaker_transitions"] = [
            list(pair) for pair in self.breaker_transitions
        ]
        payload["recovered"] = self.recovered
        payload["ok"] = self.ok
        return payload


@dataclass
class CorruptionChaosReport:
    """Scorecard of one corrupt-at-rest chaos run.

    The bar is *zero wrong answers*: every read during and after the
    corruption either returned the model's value or failed loudly with
    ``DATA_CORRUPT`` — silent damage never leaked into a response — and
    the quarantined run was rebuilt from a follower before the end.
    """

    ops_total: int = 0
    acked: int = 0
    reads_total: int = 0
    corrupt_reads: int = 0  # reads answered DATA_CORRUPT (honest refusal)
    wrong_answers: int = 0  # reads returning data that contradicts the model
    other_errors: int = 0
    injections: int = 0
    corrupted_files: list[str] = field(default_factory=list)
    detected: bool = False
    detection_sources: list[str] = field(default_factory=list)
    quarantined_seen: int = 0
    runs_repaired: int = 0
    repair_seconds: float = -1.0
    final_quarantined: int = -1
    lost_acked: int = 0
    replicas: int = 0
    ack_policy: str = "leader_only"
    scrub: dict = field(default_factory=dict)

    @property
    def repaired(self) -> bool:
        """Did the quarantine clear through a replica-backed rebuild?"""
        return self.runs_repaired >= 1 and self.final_quarantined == 0

    @property
    def ok(self) -> bool:
        """Detect, contain, repair — and never answer wrong."""
        return (
            self.injections >= 1
            and self.detected
            and self.quarantined_seen >= 1
            and self.repaired
            and self.wrong_answers == 0
            and self.lost_acked == 0
            and self.other_errors == 0
        )

    def summary(self) -> str:
        """Multi-line human summary for the CLI."""
        lines = [
            f"ops: {self.ops_total} total, {self.acked} acked, "
            f"{self.reads_total} reads, {self.other_errors} other errors",
            f"injections: {self.injections} "
            f"(files {self.corrupted_files})",
            "detection: "
            + (
                f"via {sorted(set(self.detection_sources))}"
                if self.detected
                else "NEVER DETECTED"
            ),
            f"containment: {self.quarantined_seen} run(s) quarantined, "
            f"{self.corrupt_reads} read(s) refused with DATA_CORRUPT, "
            f"{self.wrong_answers} wrong answer(s)",
            "repair: "
            + (
                f"{self.runs_repaired} run(s) rebuilt from a follower in "
                f"{self.repair_seconds * 1000:.0f} ms"
                if self.repaired
                else (
                    f"NOT REPAIRED ({self.final_quarantined} still "
                    f"quarantined)"
                )
            ),
            f"lost acked writes: {self.lost_acked}",
            f"verdict: {'OK' if self.ok else 'FAILED'}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready view including the derived verdict fields."""
        payload = asdict(self)
        payload["repaired"] = self.repaired
        payload["ok"] = self.ok
        return payload


_SSTABLE_FOOTER = struct.Struct("<QIQIQI8s")


def _flip_run_byte(directory: str, rng: random.Random) -> str | None:
    """Flip one data-region byte of a seeded-random live run file.

    Returns the corrupted filename, or None when the directory has no
    run with a non-empty data region. The flip lands strictly below
    ``index_off`` so it damages a data block (the read/scrub paths'
    CRC territory), never the footer that opening the file depends on.
    """
    candidates = sorted(
        name for name in os.listdir(directory) if name.endswith(".run")
    )
    rng.shuffle(candidates)
    for name in candidates:
        path = os.path.join(directory, name)
        try:
            with open(path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size < _SSTABLE_FOOTER.size:
                    continue
                handle.seek(size - _SSTABLE_FOOTER.size)
                index_off = _SSTABLE_FOOTER.unpack(
                    handle.read(_SSTABLE_FOOTER.size)
                )[0]
                if index_off <= 0 or index_off > size:
                    continue
                offset = rng.randrange(index_off)
                handle.seek(offset)
                original = handle.read(1)
                if not original:
                    continue
                handle.seek(offset)
                handle.write(bytes([original[0] ^ 0xFF]))
                handle.flush()
                os.fsync(handle.fileno())
            return name
        except OSError:
            continue  # raced a merge deleting the file: try another
    return None


async def run_corruption_chaos(
    directory: str,
    num_shards: int = 2,
    ops: int = 300,
    target_shard: int = 0,
    corrupt_at: float = 0.4,
    seed: int = 0,
    keyspace: int = 256,
    value_bytes: int = 32,
    op_interval: float = 0.002,
    repair_deadline: float = 15.0,
    options: StoreOptions | None = None,
    replicas: int = 1,
    ack_policy: str = "leader_only",
) -> CorruptionChaosReport:
    """Flip at-rest bytes in a leader run mid-load; score the survival.

    The schedule is seeded and keyed by op index like :func:`run_chaos`:
    the same arguments corrupt the same shard at the same point in the
    same stream. The target shard's leader engine gets one data-block
    byte flipped at ``corrupt_at``; the load keeps reading and writing
    throughout, counting every response against the model. After the
    load, a forced scrub pass guarantees detection even if no read
    happened to touch the damaged block, and the run waits out the
    leader's repair ticker until the quarantine clears.

    Requires ``replicas >= 1`` — repair is replica-backed by design; a
    single-copy store can only contain, not heal.
    """
    if replicas < 1:
        raise ConfigurationError(
            "corrupt-at-rest chaos needs replicas >= 1 to repair from"
        )
    if not 0.0 < corrupt_at < 1.0:
        raise ConfigurationError("need 0 < corrupt_at < 1")
    if not 0 <= target_shard < num_shards:
        raise ConfigurationError(f"no such shard {target_shard}")
    report = CorruptionChaosReport(replicas=replicas, ack_policy=ack_policy)
    rng = random.Random(seed)
    corrupt_index = int(ops * corrupt_at)
    model: dict[bytes, bytes] = {}
    corrupted_at = 0.0

    cluster = LocalCluster(
        directory,
        num_shards=num_shards,
        # Small memtables so the load actually produces on-disk runs to
        # corrupt; no block cache so reads observe the disk; a fast
        # scrub cadence so background detection competes with the load.
        options=options
        or StoreOptions(
            block_cache_bytes=0,
            memtable_bytes=4096,
            scrub_interval=0.2,
        ),
        shard_client_options=dict(
            max_retries=1,
            timeout=2.0,
            backoff_base=0.01,
            backoff_max=0.05,
        ),
        replicas=replicas,
        ack_policy=ack_policy,
        repair_interval=0.1,
    )
    async with cluster:
        host, port = cluster.address
        engine = cluster.store.engine(target_shard)
        client = KVClient(host, port, max_retries=0, timeout=5.0)

        def inject() -> str | None:
            # Make sure at least one run exists, then flip a byte in a
            # seeded-random one.
            if not any(
                name.endswith(".run")
                for name in os.listdir(engine.directory)
            ):
                engine.flush()
            return _flip_run_byte(engine.directory, rng)

        async def audit_get(key: bytes) -> None:
            report.reads_total += 1
            try:
                stored = await client.get(key)
            except RequestFailedError as error:
                if error.code == protocol.CODE_DATA_CORRUPT:
                    # The honest outcome: refusal, never a wrong value.
                    report.corrupt_reads += 1
                    report.detected = True
                    if "read" not in report.detection_sources:
                        report.detection_sources.append("read")
                else:
                    report.other_errors += 1
                return
            except ServerError:
                report.other_errors += 1
                return
            if stored != model.get(key):
                report.wrong_answers += 1

        try:
            for index in range(ops):
                if index == corrupt_index:
                    name = await asyncio.to_thread(inject)
                    if name is not None:
                        report.injections += 1
                        report.corrupted_files.append(name)
                        corrupted_at = time.monotonic()
                key = f"key-{rng.randrange(keyspace):06d}".encode()
                value = f"{index:08d}".encode() + bytes(
                    rng.randrange(256)
                    for _ in range(max(0, value_bytes - 8))
                )
                report.ops_total += 1
                try:
                    await client.put(key, value)
                except ServerError:
                    report.other_errors += 1
                else:
                    report.acked += 1
                    model[key] = value
                if model and rng.random() < 0.5:
                    probe = rng.choice(sorted(model))
                    await audit_get(probe)
                await asyncio.sleep(op_interval)

            # Detection guarantee: if neither a read nor the background
            # scrubber tripped over the damage yet (the load may never
            # have touched that block, or a merge may have retired the
            # file first), inject again and force a synchronous scrub
            # pass — bounded, seeded retries.
            for _attempt in range(3):
                if engine.quarantined_entries():
                    break
                status = await asyncio.to_thread(engine.scrub_pass)
                if status["findings"] or engine.quarantined_entries():
                    break
                name = await asyncio.to_thread(inject)
                if name is not None:
                    report.injections += 1
                    report.corrupted_files.append(name)
                    corrupted_at = time.monotonic()
            quarantined = engine.quarantined_entries()
            report.quarantined_seen = max(
                report.quarantined_seen, len(quarantined)
            )
            if quarantined:
                report.detected = True
                sources = {entry.source for entry in quarantined}
                for source in sorted(sources):
                    if source not in report.detection_sources:
                        report.detection_sources.append(source)

            # Wait out the leader's repair ticker: the quarantine must
            # clear through a replica-backed rebuild, not a drop.
            deadline = time.monotonic() + repair_deadline
            while time.monotonic() < deadline:
                if not engine.quarantined_entries():
                    break
                await asyncio.sleep(0.05)
            report.final_quarantined = len(engine.quarantined_entries())
            if report.final_quarantined == 0 and corrupted_at:
                report.repair_seconds = time.monotonic() - corrupted_at
            report.runs_repaired = sum(
                1
                for event in engine.obs.tracer.events(-1, None)
                if event.kind == "run_repaired"
            )
            report.scrub = engine.corruption_status()["scrub"]

            # The final audit: every acked write must read back, and a
            # repaired store must answer all of them — no refusals left.
            verifier = KVClient(host, port, max_retries=6, timeout=5.0)
            try:
                for key, value in model.items():
                    try:
                        stored = await verifier.get(key)
                    except ServerError:
                        stored = None
                    if stored != value:
                        report.lost_acked += 1
            finally:
                await verifier.aclose()
        finally:
            await client.aclose()
    return report


def _percentile(samples: list[float], pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, round(pct / 100 * (len(ordered) - 1)))
    )
    return ordered[index]


async def run_chaos(
    directory: str,
    num_shards: int = 3,
    ops: int = 300,
    kill_shard: int = 0,
    kill_at: float = 0.25,
    restore_at: float = 0.6,
    seed: int = 0,
    keyspace: int = 256,
    value_bytes: int = 32,
    cooldown: float = 0.25,
    op_interval: float = 0.002,
    recovery_deadline: float = 10.0,
    options: StoreOptions | None = None,
    replicas: int = 0,
    ack_policy: str = "leader_only",
    read_from_replica: bool = False,
) -> ChaosReport:
    """Run the kill/restore schedule against a fresh LocalCluster.

    ``options`` overrides the per-shard engine configuration (used by the
    maintenance-worker tests to run the same schedule with background
    workers enabled); the default disables the block cache.

    With ``replicas > 0`` the kill targets a shard *leader* and nothing
    is ever restored: recovery must come from the router promoting a
    follower. ``restore_at`` is ignored in that mode.
    """
    if replicas > 0:
        if not 0.0 < kill_at < 1.0:
            raise ConfigurationError("need 0 < kill_at < 1")
    elif not 0.0 < kill_at < restore_at < 1.0:
        raise ConfigurationError("need 0 < kill_at < restore_at < 1")
    report = ChaosReport(replicas=replicas, ack_policy=ack_policy)
    rng = random.Random(seed)
    kill_index = int(ops * kill_at)
    if replicas > 0:
        restore_index = -1  # leader-kill mode: the dead stay dead
        scan_index = min(ops - 1, kill_index + max(1, ops // 10))
    else:
        restore_index = max(kill_index + 1, int(ops * restore_at))
        scan_index = (kill_index + restore_index) // 2
    model: dict[bytes, bytes] = {}
    survivors: list[float] = []
    restored_at = 0.0

    cluster = LocalCluster(
        directory,
        num_shards=num_shards,
        options=options or StoreOptions(block_cache_bytes=0),
        # Fast transport failure detection: one retry, tight timeouts.
        shard_client_options=dict(
            max_retries=1,
            timeout=1.0,
            backoff_base=0.01,
            backoff_max=0.05,
        ),
        breaker_options=dict(
            failure_threshold=0.5,
            window=8,
            min_samples=2,
            cooldown=cooldown,
        ),
        replicas=replicas,
        ack_policy=ack_policy,
        read_from_replica=read_from_replica,
    )
    async with cluster:
        host, port = cluster.address
        assert cluster.router is not None
        breaker = cluster.router.breakers[kill_shard]
        # The driver surfaces every error instead of retrying through
        # the outage: the error budget is the measurement.
        client = KVClient(host, port, max_retries=0, timeout=5.0)
        down = False
        try:
            for index in range(ops):
                if index == kill_index:
                    await cluster.kill_shard(kill_shard)
                    down = True
                    if replicas > 0:
                        # Recovery clock: kill → first promoted-leader
                        # ack on the killed range.
                        restored_at = time.monotonic()
                if index == restore_index:
                    await cluster.restore_shard(kill_shard)
                    restored_at = time.monotonic()
                    down = False
                if index == scan_index and down:
                    try:
                        scan = await client.scan_detailed(limit=50)
                    except ServerError:
                        scan = None
                    if scan is not None:
                        report.degraded_scan_seen = scan["degraded"]
                        report.degraded_scan_correct = scan[
                            "missing_shards"
                        ] == [kill_shard]
                        report.replica_scan_seen = bool(
                            scan.get("replica_read")
                        )
                        report.max_staleness_bytes = int(
                            scan.get("staleness_bytes") or 0
                        )
                key = f"key-{rng.randrange(keyspace):06d}".encode()
                value = f"{index:08d}".encode() + bytes(
                    rng.randrange(256)
                    for _ in range(max(0, value_bytes - 8))
                )
                target = cluster.store.ring.shard_for(key)
                report.ops_total += 1
                started = time.monotonic()
                try:
                    await client.put(key, value)
                except RetriesExhaustedError as error:
                    elapsed = time.monotonic() - started
                    cause = error.last_error
                    if (
                        isinstance(cause, RequestFailedError)
                        and cause.code == protocol.CODE_SHARD_DOWN
                    ):
                        report.shard_down_fast_fails += 1
                        report.fail_fast_max = max(
                            report.fail_fast_max, elapsed
                        )
                    else:
                        report.other_errors += 1
                except ServerError:
                    report.other_errors += 1
                else:
                    elapsed = time.monotonic() - started
                    report.acked += 1
                    model[key] = value
                    if target != kill_shard:
                        survivors.append(elapsed)
                    elif down and replicas > 0:
                        # A write on the killed range succeeded again:
                        # the router promoted a follower.
                        report.recovery_seconds = (
                            time.monotonic() - restored_at
                        )
                        down = False
                await asyncio.sleep(op_interval)

            # Post-load: drive probe writes at the killed range until
            # its breaker closes again (cooldown is wall-clock).
            deadline = time.monotonic() + recovery_deadline
            probe_keys = [
                f"key-{candidate:06d}".encode()
                for candidate in range(keyspace)
                if cluster.store.ring.shard_for(
                    f"key-{candidate:06d}".encode()
                )
                == kill_shard
            ]
            probe_turn = 0
            while time.monotonic() < deadline:
                key = probe_keys[probe_turn % len(probe_keys)]
                probe_turn += 1
                value = f"probe-{probe_turn:04d}".encode()
                try:
                    await client.put(key, value)
                except ServerError:
                    await asyncio.sleep(cooldown / 4)
                    continue
                model[key] = value
                report.acked += 1
                report.ops_total += 1
                if report.recovery_seconds < 0.0:
                    report.recovery_seconds = (
                        time.monotonic() - restored_at
                    )
                if breaker.state == CLOSED:
                    break

            # The final audit: every acked write must read back.
            verifier = KVClient(host, port, max_retries=6, timeout=5.0)
            try:
                for key, value in model.items():
                    try:
                        stored = await verifier.get(key)
                    except ServerError:
                        stored = None
                    if stored != value:
                        report.lost_acked += 1
            finally:
                await verifier.aclose()
            report.breaker_transitions = list(breaker.transitions)
            report.final_health = cluster.router.shard_health()
            report.promotions = cluster.router.promotions
            report.shard_epochs = cluster.router.epochs
        finally:
            await client.aclose()
    report.surviving_p99 = _percentile(survivors, 99.0)
    return report
