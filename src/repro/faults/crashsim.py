"""The crash-recovery property harness (CrashMonkey/ALICE-style).

The property under test is the **recovered-prefix invariant**. Run a
seeded workload of ``put``/``delete`` operations against a store with
``sync_writes=True``; crash it; reopen the directory. Then:

* every operation the store *acked* (the call returned) must be
  present — acked-durable writes cannot be lost;
* no operation beyond the last *issued* one may appear — recovery must
  not invent phantom writes;
* the recovered state must equal ``apply(ops[:j])`` for a single cut
  ``j`` with ``acked <= j <= issued`` — a crash mid-append may keep or
  lose the in-flight operation, but must not tear *across* operations;
* :func:`~repro.engine.integrity.verify_store` must report clean.

Two generators of crash states exercise the invariant:

:func:`wal_prefix_sweep`
    Byte-granular enumeration. Run the workload once, recording the WAL
    offset after every append, then materialize a crash image truncated
    at every frame boundary — and at *every byte* of the final frame —
    and recover each one. This is the "the disk stopped mid-sector"
    adversary; no fault plan is needed because truncation simulates it
    after the fact.

:func:`fault_scenarios`
    Targeted injection via :class:`~repro.faults.plan.FaultPlan`: fail
    or tear a specific WAL append, fail an fsync, kill an SSTable flush
    mid-write, tear a manifest record — then crash immediately
    (directory snapshot + :meth:`~repro.engine.LSMStore.crash`) and
    recover the image.

Both return a :class:`CrashSimReport`; ``python -m repro crashsim``
and the acceptance tests drive :func:`run_crash_harness`, which runs
the full battery.
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field

from ..engine.datastore import LSMStore
from ..engine.integrity import verify_store
from ..engine.options import StoreOptions
from ..engine.quarantine import QuarantineSet
from ..engine.sstable import SSTableReader
from ..errors import DataCorruptError, FaultInjectedError
from .plan import FaultPlan, FaultRule

#: Operations in the default workload (the acceptance bar is 500).
DEFAULT_NUM_OPS = 500

_WAL_FILE = "wal.log"


def build_workload(
    num_ops: int, seed: int = 0, keyspace: int = 64, value_bytes: int = 16
) -> list[tuple[bytes, bytes | None]]:
    """A seeded mix of puts (~85%) and deletes over a small keyspace.

    Small keys collide often, so recovery must get shadowing and
    tombstones right, not just replay disjoint inserts.
    """
    rng = random.Random(seed)
    ops: list[tuple[bytes, bytes | None]] = []
    for index in range(num_ops):
        key = f"key-{rng.randrange(keyspace):05d}".encode()
        if rng.random() < 0.15:
            ops.append((key, None))
        else:
            payload = bytes(
                rng.randrange(256) for _ in range(value_bytes - 8)
            )
            ops.append((key, f"{index:08d}".encode() + payload))
    return ops


def apply_ops(
    ops: list[tuple[bytes, bytes | None]],
) -> dict[bytes, bytes]:
    """The model: last-writer-wins map with deletes removing keys."""
    state: dict[bytes, bytes] = {}
    for key, value in ops:
        if value is None:
            state.pop(key, None)
        else:
            state[key] = value
    return state


@dataclass
class CrashSimReport:
    """Outcome of one harness run."""

    crash_points: int = 0
    failures: list[str] = field(default_factory=list)
    fired: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every crash point recovered correctly."""
        return not self.failures

    def merge(self, other: "CrashSimReport") -> None:
        """Fold another report's points and failures into this one."""
        self.crash_points += other.crash_points
        self.failures.extend(other.failures)
        self.fired.extend(other.fired)

    def summary(self) -> str:
        """One-paragraph human summary."""
        lines = [
            f"crash points checked: {self.crash_points}",
            f"injected faults fired: {len(self.fired)}",
            f"failures: {len(self.failures)}",
        ]
        lines.extend(f"  FAIL {failure}" for failure in self.failures[:20])
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _check_recovery(
    image: str,
    ops: list[tuple[bytes, bytes | None]],
    acked: int,
    issued: int,
    label: str,
    report: CrashSimReport,
) -> None:
    """Reopen ``image`` and assert the recovered-prefix invariant."""
    report.crash_points += 1
    try:
        with LSMStore.open(image) as store:
            recovered = dict(store.scan())
    except Exception as error:  # noqa: BLE001 — a failure to report
        report.failures.append(f"{label}: reopen raised {error!r}")
        return
    for cut in range(acked, issued + 1):
        if recovered == apply_ops(ops[:cut]):
            break
    else:
        expected = apply_ops(ops[:acked])
        missing = sorted(set(expected) - set(recovered))
        extra = sorted(set(recovered) - set(apply_ops(ops[:issued])))
        report.failures.append(
            f"{label}: recovered state matches no prefix in "
            f"[{acked}, {issued}] (missing {missing[:3]!r}, "
            f"phantom {extra[:3]!r})"
        )
        return
    integrity = verify_store(image)
    if not integrity.clean:
        report.failures.append(
            f"{label}: verify_store found {integrity.problems}"
        )


def wal_prefix_sweep(
    workdir: str,
    num_ops: int = DEFAULT_NUM_OPS,
    seed: int = 0,
    boundary_stride: int = 1,
) -> CrashSimReport:
    """Crash-enumerate the WAL: every frame boundary, every tail byte.

    The live store uses a memtable far larger than the workload so all
    state stays WAL-resident — crash images are then just truncated
    copies of the log, which makes the enumeration byte-exact: image
    ``k`` holds frames ``[0, k)`` plus, for the tail sweep, a torn
    piece of frame ``k``. Acked == frame count in the image for
    boundary cuts; a torn tail must recover to exactly the boundary
    below it. ``boundary_stride`` subsamples the boundary cuts (the
    byte-granular tail sweep always runs in full).
    """
    ops = build_workload(num_ops, seed)
    live = os.path.join(workdir, "live")
    options = StoreOptions(
        sync_writes=True, memtable_bytes=1 << 30, block_cache_bytes=0
    )
    offsets: list[int] = [0]
    store = LSMStore.open(live, options)
    try:
        wal_path = os.path.join(live, _WAL_FILE)
        for key, value in ops:
            if value is None:
                store.delete(key)
            else:
                store.put(key, value)
            offsets.append(os.path.getsize(wal_path))
        with open(wal_path, "rb") as wal:
            wal_bytes = wal.read()
        with open(os.path.join(live, "MANIFEST"), "rb") as manifest_file:
            manifest_bytes = manifest_file.read()
    finally:
        store.crash()

    report = CrashSimReport()
    image = os.path.join(workdir, "image")

    def make_image(wal_prefix: bytes) -> str:
        if os.path.exists(image):
            shutil.rmtree(image)
        os.makedirs(image)
        with open(os.path.join(image, _WAL_FILE), "wb") as wal:
            wal.write(wal_prefix)
        with open(os.path.join(image, "MANIFEST"), "wb") as manifest:
            manifest.write(manifest_bytes)
        return image

    # Every frame boundary: the store crashed between two appends.
    for index in range(0, len(offsets), max(1, boundary_stride)):
        cut = offsets[index]
        _check_recovery(
            make_image(wal_bytes[:cut]),
            ops,
            acked=index,
            issued=index,
            label=f"boundary[{index}]@{cut}B",
            report=report,
        )
    # Byte-granular sweep over the last frame: the torn-tail adversary.
    # Every partial byte count must recover to the boundary below.
    for cut in range(offsets[-2] + 1, offsets[-1]):
        _check_recovery(
            make_image(wal_bytes[:cut]),
            ops,
            acked=len(ops) - 1,
            issued=len(ops),
            label=f"torn-tail@{cut}B",
            report=report,
        )
    if os.path.exists(image):
        shutil.rmtree(image)
    return report


def _run_with_plan(
    directory: str,
    ops: list[tuple[bytes, bytes | None]],
    options: StoreOptions,
) -> tuple[int, int]:
    """Drive ``ops`` until the plan's fault stops the store.

    Returns ``(acked, issued)``: operations completed versus attempted.
    A fault that fires during inline maintenance (flush/merge) aborts
    the write that triggered it, so that write counts as issued only.
    """
    acked = 0
    store = LSMStore.open(directory, options)
    try:
        for key, value in ops:
            try:
                if value is None:
                    store.delete(key)
                else:
                    store.put(key, value)
            except FaultInjectedError:
                return acked, acked + 1
            acked += 1
        return acked, acked
    finally:
        store.crash()


def fault_scenarios(workdir: str, seed: int = 0) -> CrashSimReport:
    """Targeted injected-fault crashes across WAL, SSTable, manifest."""
    # A wide keyspace keeps most puts fresh (updates net out of the
    # memtable byte count), so the 4 KiB memtables below really rotate.
    ops = build_workload(160, seed, keyspace=4096, value_bytes=64)
    report = CrashSimReport()
    # Small memtables force real flushes (hence SSTable and manifest
    # traffic) inside a 120-op run.
    flushing = dict(
        memtable_bytes=4096, block_cache_bytes=0, sync_writes=True
    )
    wal_only = dict(
        memtable_bytes=1 << 30, block_cache_bytes=0, sync_writes=True
    )
    scenarios = [
        ("wal-write-fail", wal_only, FaultRule("wal.write", 40, "fail")),
        (
            "wal-torn-append",
            wal_only,
            FaultRule("wal.write", 55, "torn", keep_bytes=7),
        ),
        ("wal-fsync-fail", wal_only, FaultRule("wal.fsync", 70, "fail")),
        (
            "sstable-mid-flush",
            flushing,
            FaultRule("sstable.write", 2, "fail"),
        ),
        (
            "manifest-torn-add",
            flushing,
            FaultRule("manifest.write", 1, "torn", keep_bytes=10),
        ),
    ]
    for name, base, rule in scenarios:
        plan = FaultPlan([rule], seed=seed)
        live = os.path.join(workdir, f"scenario-{name}")
        options = StoreOptions(fault_plan=plan, **base)
        acked, issued = _run_with_plan(live, ops, options)
        if not plan.fired:
            report.crash_points += 1
            report.failures.append(
                f"{name}: fault never fired (acked {acked}) — "
                "the scenario is miswired"
            )
            continue
        report.fired.extend(f"{name}:{entry}" for entry in plan.fired)
        image = os.path.join(workdir, f"image-{name}")
        shutil.copytree(live, image)
        _check_recovery(image, ops, acked, issued, name, report)
    return report


def compressed_block_scenarios(
    workdir: str, seed: int = 0, positions: int = 8
) -> CrashSimReport:
    """At-rest corruption inside a *compressed* data block.

    The version-2 block CRC covers the compressed bytes, so a flipped
    bit must be detected *before* any decompression is attempted — a
    corrupt DEFLATE stream fed to the codec could otherwise
    "successfully" inflate to garbage. This sweep builds a zlib-coded
    store over a compressible workload, flips one byte at ``positions``
    seeded offsets strictly inside the first run's first compressed
    block (header and CRC excluded — the payload is the hard case),
    and for each image asserts the survival contract: every read
    returns the model's value or refuses with
    :class:`~repro.errors.DataCorruptError`; at least one read detects;
    the quarantine registry records the run; never a wrong answer.
    """
    rng = random.Random(seed)
    live = os.path.join(workdir, "live")
    options = StoreOptions(
        block_codec="zlib",
        sync_writes=True,
        memtable_bytes=1 << 30,
        block_cache_bytes=0,
    )
    model: dict[bytes, bytes] = {}
    with LSMStore.open(live, options) as store:
        for index in range(256):
            key = f"key-{index:05d}".encode()
            value = (f"payload-{index:05d}:" * 8).encode()
            store.put(key, value)
            model[key] = value
        store.flush()
        store.maintenance()
        runs = store.live_runs()
    report = CrashSimReport()
    if not runs:
        report.crash_points += 1
        report.failures.append(
            "compressed-block: store produced no runs — miswired"
        )
        return report
    run_file = runs[0].filename
    reader = SSTableReader(os.path.join(live, run_file))
    try:
        if reader.codec != "zlib":
            report.crash_points += 1
            report.failures.append(
                f"compressed-block: run codec is {reader.codec!r}, "
                "not zlib — the workload was not compressible"
            )
            return report
        block_off, block_len = reader.block_span(0)
    finally:
        reader.close()
    # Flip bytes strictly inside the compressed payload: past the
    # 5-byte block header, short of the 4-byte CRC suffix.
    payload_lo = block_off + 5
    payload_hi = block_off + block_len - 4
    targets = sorted(
        rng.sample(range(payload_lo, payload_hi),
                   min(positions, payload_hi - payload_lo))
    )
    for position in targets:
        label = f"compressed-block@{position}B"
        report.crash_points += 1
        image = os.path.join(workdir, "image")
        if os.path.exists(image):
            shutil.rmtree(image)
        shutil.copytree(live, image)
        with open(os.path.join(image, run_file), "r+b") as damaged:
            damaged.seek(position)
            original = damaged.read(1)
            damaged.seek(position)
            damaged.write(bytes([original[0] ^ 0xFF]))
        detections = 0
        wrong = 0
        with LSMStore.open(image, options) as store:
            for key, value in model.items():
                try:
                    got = store.get(key)
                except DataCorruptError:
                    detections += 1
                    continue
                if got != value:
                    wrong += 1
            quarantined = [e.run_id for e in store.quarantined_entries()]
        if wrong:
            report.failures.append(
                f"{label}: {wrong} wrong answer(s) served from a "
                "corrupt compressed block"
            )
        if not detections:
            report.failures.append(
                f"{label}: corruption never detected "
                "(CRC did not fence the compressed payload)"
            )
        elif not quarantined:
            report.failures.append(
                f"{label}: detected but run never quarantined"
            )
        else:
            report.fired.append(f"{label}:quarantined-run-{quarantined[0]}")
        # The registry must survive a reopen, and the quarantine file
        # itself must agree with what the store reported.
        if detections and QuarantineSet(image).entries() == []:
            report.failures.append(
                f"{label}: quarantine registry empty after close"
            )
    image = os.path.join(workdir, "image")
    if os.path.exists(image):
        shutil.rmtree(image)
    return report


def run_crash_harness(
    workdir: str, num_ops: int = DEFAULT_NUM_OPS, seed: int = 0
) -> CrashSimReport:
    """The full battery: byte-granular sweep, injected-fault scenarios,
    and the compressed-block at-rest corruption sweep."""
    report = wal_prefix_sweep(
        os.path.join(workdir, "sweep"), num_ops=num_ops, seed=seed
    )
    report.merge(fault_scenarios(os.path.join(workdir, "faults"), seed))
    report.merge(
        compressed_block_scenarios(os.path.join(workdir, "blocks"), seed)
    )
    return report
