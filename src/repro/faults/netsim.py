"""A frame-aware faulty TCP proxy for the framed-JSON protocol.

:class:`FaultyProxy` sits between a :class:`~repro.server.KVClient` and
a real server and misbehaves on a per-connection *script*: each accepted
connection consumes the next behavior from the script (then defaults to
``pass``), so a test states exactly which connection attempt refuses,
which one tears a response frame, and which one finally succeeds —
deterministic adversarial networking, no packet-level tooling required.

Behaviors (build with the module helpers):

* :data:`PASS` — forward both directions untouched;
* :data:`REFUSE` — accept and immediately close (connection refused,
  as the client experiences it);
* :func:`drop_after` — forward N response frames, then cut the
  connection (mid-conversation drop);
* :func:`delay_frames` — forward responses whole, each after a fixed
  delay (latency injection against client timeouts);
* :func:`partial_frame` — send only the first N bytes of the first
  response frame, then close (a torn frame: the client must treat the
  connection as poisoned, not retry parsing).

The proxy is frame-aware only on the server→client direction — that is
where tearing matters, because the client's framing layer is the thing
under test. The client→server direction is a dumb byte pump.
"""

from __future__ import annotations

import asyncio
import contextlib
import struct

_LENGTH = struct.Struct(">I")

PASS = ("pass",)
REFUSE = ("refuse",)


def drop_after(frames: int) -> tuple:
    """Forward ``frames`` response frames, then cut the connection."""
    return ("drop_after", frames)


def delay_frames(seconds: float) -> tuple:
    """Delay every response frame by ``seconds`` before forwarding."""
    return ("delay", seconds)


def partial_frame(nbytes: int) -> tuple:
    """Send ``nbytes`` of the first response frame, then close."""
    return ("partial", nbytes)


class FaultyProxy:
    """Scripted man-in-the-middle for one upstream (host, port)."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        script: list[tuple] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        sleep=None,
    ) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._script = list(script or [])
        self._host = host
        self._port = port
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._server: asyncio.AbstractServer | None = None
        self.connections_total = 0
        self.frames_forwarded = 0
        self.connections_cut = 0

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the proxy's (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> tuple[str, int]:
        """The proxy's bound (host, port); valid after :meth:`start`."""
        return self._host, self._port

    async def aclose(self) -> None:
        """Stop accepting and release the socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "FaultyProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def _next_behavior(self) -> tuple:
        if self._script:
            return self._script.pop(0)
        return PASS

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        behavior = self._next_behavior()
        if behavior[0] == "refuse":
            self.connections_cut += 1
            await _close(writer)
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self._upstream
            )
        except OSError:
            self.connections_cut += 1
            await _close(writer)
            return
        upstream_pump = asyncio.ensure_future(
            _pump_bytes(reader, up_writer)
        )
        try:
            await self._pump_frames(up_reader, writer, behavior)
        finally:
            upstream_pump.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await upstream_pump
            await _close(up_writer)
            await _close(writer)

    async def _pump_frames(
        self,
        up_reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        behavior: tuple,
    ) -> None:
        """server→client direction, with the scripted misbehavior."""
        kind = behavior[0]
        forwarded = 0
        while True:
            try:
                header = await up_reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                payload = await up_reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # upstream went away
            frame = header + payload
            if kind == "partial":
                writer.write(frame[: behavior[1]])
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.drain()
                self.connections_cut += 1
                return
            if kind == "delay":
                await self._sleep(behavior[1])
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                return
            forwarded += 1
            self.frames_forwarded += 1
            if kind == "drop_after" and forwarded >= behavior[1]:
                self.connections_cut += 1
                return


async def _pump_bytes(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """client→server direction: a plain byte pump."""
    try:
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                return
            writer.write(chunk)
            await writer.drain()
    except (ConnectionError, OSError):
        return


async def _close(writer: asyncio.StreamWriter) -> None:
    writer.close()
    # Teardown may race loop shutdown: swallow cancellation too — the
    # transport is already closing either way.
    with contextlib.suppress(Exception, asyncio.CancelledError):
        await writer.wait_closed()
