"""Deterministic fault injection and failure harnesses for every tier.

The storage engine, the network service, and the cluster all *claim*
robustness properties — crash-consistent WAL/manifest recovery, retrying
clients, graceful shard degradation — but claims without adversaries are
just comments. This package supplies the adversaries, all seeded and
replayable:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultyFile`:
  wrap the engine's file handles (via ``StoreOptions.fault_plan``) and
  fail, torn-write, or corrupt the Nth I/O at a named site
  (``wal.write``, ``wal.fsync``, ``manifest.write``, ``sstable.write``).
* :mod:`repro.faults.crashsim` — the crash-recovery property harness:
  replay a seeded workload, crash at every frame boundary and at every
  byte of the WAL tail, reopen, and assert the recovered-prefix
  invariant (acked writes present, no phantoms, ``verify_store`` clean).
* :mod:`repro.faults.netsim` — :class:`FaultyProxy`, a frame-aware TCP
  shim that refuses, drops, delays, or tears connections between a
  :class:`~repro.server.KVClient` and its server.
* :mod:`repro.faults.chaos` — :func:`run_chaos`, the cluster chaos
  runner behind ``python -m repro chaos``: kill a shard mid-load,
  restore it, and report recovery time + error budget.
"""

from .chaos import (
    ChaosReport,
    CorruptionChaosReport,
    run_chaos,
    run_corruption_chaos,
)
from .crashsim import (
    CrashSimReport,
    apply_ops,
    build_workload,
    compressed_block_scenarios,
    fault_scenarios,
    run_crash_harness,
    wal_prefix_sweep,
)
from .netsim import FaultyProxy
from .plan import KINDS, SITES, FaultPlan, FaultRule, FaultyFile

__all__ = [
    "KINDS",
    "SITES",
    "ChaosReport",
    "CorruptionChaosReport",
    "CrashSimReport",
    "FaultPlan",
    "FaultRule",
    "FaultyFile",
    "FaultyProxy",
    "apply_ops",
    "build_workload",
    "compressed_block_scenarios",
    "fault_scenarios",
    "run_chaos",
    "run_corruption_chaos",
    "run_crash_harness",
    "wal_prefix_sweep",
]
