"""Exception hierarchy for the ``repro`` library.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch a single base class. The sub-hierarchy mirrors the
package layout: configuration problems, simulation-model violations, and
storage-engine failures each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(ReproError):
    """A merge scheduler was driven through an illegal transition."""


class PolicyError(ReproError):
    """A merge policy produced or received an invalid merge description."""


class StorageError(ReproError):
    """Base class for failures in the real storage engine (``repro.engine``)."""


class CorruptionError(StorageError):
    """On-disk data failed a checksum or structural validation check."""


class WriteStalledError(StorageError):
    """A non-blocking write was rejected because the tree is stalled.

    Raised only when the engine is configured with ``stall_mode="reject"``;
    the default behaviour is to block the writer until the stall clears,
    matching the paper's "stop" write-interaction mode.
    """


class ClosedError(StorageError):
    """An operation was attempted on a closed datastore or iterator."""


class ServerError(ReproError):
    """Base class for failures in the network layer (``repro.server``)."""


class ProtocolError(ServerError):
    """A malformed frame or message was sent or received."""


class RequestFailedError(ServerError):
    """The server answered a request with an error response.

    ``code`` carries the protocol error code (for example ``"STALLED"``
    or ``"BAD_REQUEST"``); ``retry_after`` is the server's backoff hint
    in seconds when the failure is transient, else 0.
    """

    def __init__(self, code: str, message: str, retry_after: float = 0.0) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after


class RetriesExhaustedError(ServerError):
    """A client request failed every attempt in its retry budget."""
