"""Exception hierarchy for the ``repro`` library.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch a single base class. The sub-hierarchy mirrors the
package layout: configuration problems, simulation-model violations, and
storage-engine failures each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(ReproError):
    """A merge scheduler was driven through an illegal transition."""


class PolicyError(ReproError):
    """A merge policy produced or received an invalid merge description."""


class StorageError(ReproError):
    """Base class for failures in the real storage engine (``repro.engine``)."""


class CorruptionError(StorageError):
    """On-disk data failed a checksum or structural validation check."""


class DataCorruptError(StorageError):
    """A read could not be answered soundly: a required run is corrupt.

    Raised by :meth:`~repro.engine.datastore.LSMStore.get`/``scan`` when
    the requested key (or range) intersects a quarantined run — serving
    the read by skipping the run could silently return a stale or
    missing value, so the store fails fast instead. ``min_key``/
    ``max_key`` bound the affected key range; keys provably outside it
    keep serving normally. Surfaced on the wire as ``DATA_CORRUPT``.
    """

    def __init__(
        self,
        message: str,
        run_id: int = -1,
        min_key: bytes = b"",
        max_key: bytes = b"",
    ) -> None:
        super().__init__(message)
        self.run_id = run_id
        self.min_key = min_key
        self.max_key = max_key


class WalFailedError(StorageError):
    """The write-ahead log failed closed after an unrecoverable error.

    Raised on any append once a failed write could not be rolled back:
    the in-memory cursor and the physical file may disagree, so handing
    out further ``(offset, length)`` spans would poison replication
    cursors and ``wal_position()``. Recovery requires reopening the
    store (which replays the intact prefix).
    """


class WriteStalledError(StorageError):
    """A non-blocking write was rejected because the tree is stalled.

    Raised only when the engine is configured with ``stall_mode="reject"``;
    the default behaviour is to block the writer until the stall clears,
    matching the paper's "stop" write-interaction mode.
    """


class ClosedError(StorageError):
    """An operation was attempted on a closed datastore or iterator."""


class FaultInjectedError(StorageError):
    """A deterministic fault-injection rule fired (``repro.faults``).

    Raised by :class:`~repro.faults.FaultyFile` at the injected I/O
    site. To the engine this looks like a real device failure: the
    operation in flight must be treated as unacknowledged, and the
    on-disk state at that instant is exactly the crash image the
    crash-recovery harness recovers from.
    """


class ServerError(ReproError):
    """Base class for failures in the network layer (``repro.server``)."""


class ProtocolError(ServerError):
    """A malformed frame or message was sent or received."""


class RequestFailedError(ServerError):
    """The server answered a request with an error response.

    ``code`` carries the protocol error code (for example ``"STALLED"``
    or ``"BAD_REQUEST"``); ``retry_after`` is the server's backoff hint
    in seconds when the failure is transient, else 0.
    """

    def __init__(self, code: str, message: str, retry_after: float = 0.0) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after


class ShardDownError(ServerError):
    """A cluster shard is unavailable and its circuit breaker is open.

    Raised inside the router when a request targets a shard whose
    breaker refuses traffic; surfaced on the wire as a ``SHARD_DOWN``
    error response. ``retry_after`` is the breaker's remaining cooldown.
    """

    def __init__(
        self, shard: int, message: str, retry_after: float = 0.0
    ) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard
        self.retry_after = retry_after


class ReplicationError(ServerError):
    """Base class for failures in WAL shipping (``repro.replication``)."""


class ReplicaGapError(ReplicationError):
    """A shipped frame does not start at the follower's applied cursor.

    ``expected`` is the ``(generation, offset)`` the follower can accept
    next; the shipper rewinds to it (or falls back to a reset snapshot
    when the generations no longer line up).
    """

    def __init__(
        self, message: str, expected: tuple[int, int] = (0, 0)
    ) -> None:
        super().__init__(message)
        self.expected = expected


class StaleEpochError(ReplicationError):
    """A replication frame carried an epoch older than the replica's.

    The sender is a deposed leader and must stop shipping — the epoch
    check is the fencing that prevents split-brain after a promotion.
    """


class NotLeaderError(ReplicationError):
    """A leader-only operation was sent to a replica in follower role."""


class RetriesExhaustedError(ServerError):
    """A client request failed every attempt in its retry budget.

    ``last_error`` preserves the final attempt's failure so callers can
    distinguish a transport-dead backend (connection refused, timeout)
    from a live-but-stalled one (a ``STALLED`` error response) — the
    cluster router's circuit breakers key off exactly that distinction.
    """

    def __init__(
        self, message: str, last_error: Exception | None = None
    ) -> None:
        super().__init__(message)
        self.last_error = last_error
